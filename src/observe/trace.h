// Trace sink producing Chrome-tracing-compatible JSON (chrome://tracing
// or https://ui.perfetto.dev "Open trace file").
//
// The sink collects complete events ("ph":"X"): a name, a start
// timestamp relative to the sink's creation, a duration, and a small
// integer "thread" lane. Engines wrap phases in ScopedSpan; parallel
// shards pass an explicit lane id so per-shard spans nest visually under
// the parent span on lane 0.
//
// A null `TraceSink*` disables tracing: ScopedSpan's constructor then
// does no work at all (no clock read), so the hooks can stay compiled
// into the hot paths.

#ifndef DMC_OBSERVE_TRACE_H_
#define DMC_OBSERVE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace dmc {

/// One complete ("ph":"X") event.
struct TraceEvent {
  std::string name;
  int64_t ts_micros = 0;   // start, relative to sink creation
  int64_t dur_micros = 0;  // duration
  int tid = 0;             // display lane (0 = main, 1.. = shards)
  /// Optional pre-rendered JSON object for the "args" field ("{...}");
  /// empty means no args.
  std::string args_json;
};

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Microseconds since the sink was created (monotonic clock).
  int64_t NowMicros() const;

  void AddCompleteEvent(TraceEvent event);

  /// Copy of the recorded events in insertion order.
  std::vector<TraceEvent> Snapshot() const;

  /// Writes `{"traceEvents":[...], "displayTimeUnit":"ms"}` with events
  /// sorted by (ts, tid) for deterministic output.
  void WriteChromeJson(std::ostream& os) const;

 private:
  using Clock = std::chrono::steady_clock;
  const Clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ DMC_GUARDED_BY(mu_);
};

/// RAII span: records a complete event covering its lifetime. With a
/// null sink the constructor and destructor are no-ops.
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string name, int tid = 0)
      : sink_(sink), tid_(tid) {
    if (sink_ == nullptr) return;
    name_ = std::move(name);
    start_micros_ = sink_->NowMicros();
  }

  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    TraceEvent e;
    e.name = std::move(name_);
    e.ts_micros = start_micros_;
    e.dur_micros = sink_->NowMicros() - start_micros_;
    e.tid = tid_;
    e.args_json = std::move(args_json_);
    sink_->AddCompleteEvent(std::move(e));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a pre-rendered JSON object ("{...}") as the event's args.
  void SetArgsJson(std::string args_json) {
    if (sink_ != nullptr) args_json_ = std::move(args_json);
  }

 private:
  TraceSink* sink_;
  int tid_;
  std::string name_;
  std::string args_json_;
  int64_t start_micros_ = 0;
};

}  // namespace dmc

#endif  // DMC_OBSERVE_TRACE_H_
