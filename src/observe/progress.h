// Progress reporting and cooperative cancellation for the mining
// engines, plus the ObserveContext bundle that threads the whole
// observability layer (metrics registry, trace sink, progress callback)
// through every engine via DmcPolicy.
//
// Overhead policy: all three hooks default to null/empty. Engines check
// a cached `enabled` flag once per progress interval (default 1024
// rows), so a disabled context costs one integer compare per row and no
// clock reads, allocations or virtual calls.

#ifndef DMC_OBSERVE_PROGRESS_H_
#define DMC_OBSERVE_PROGRESS_H_

#include <cstdint>
#include <functional>

namespace dmc {

class MetricsRegistry;
class TraceSink;

/// One progress sample, delivered from inside a mining scan.
struct ProgressUpdate {
  /// Which scan is reporting ("prescan", "hundred_phase", "sub_phase",
  /// or a baseline pass name).
  const char* phase = "";
  /// Rows of the current scan processed so far.
  uint64_t rows_processed = 0;
  /// Total rows the current scan will touch (0 when unknown, e.g. an
  /// unbounded stream).
  uint64_t total_rows = 0;
  /// Live candidate entries in the miss-counter table right now.
  uint64_t live_candidates = 0;
  /// Current counter-array bytes (the Fig. 3 quantity).
  uint64_t counter_bytes = 0;
  /// Parallel shard index delivering this update; -1 for serial runs.
  int shard = -1;
};

/// Return false to cancel the mine; the engine stops at the next
/// progress interval and returns Status(kCancelled). May be invoked
/// concurrently from shard threads, so callbacks must be thread-safe.
using ProgressCallback = std::function<bool(const ProgressUpdate&)>;

/// Observability hooks carried by DmcPolicy. Copyable; engines treat
/// null members as disabled. The registry and sink must outlive every
/// mine that uses them.
struct ObserveContext {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  ProgressCallback progress;
  /// Rows between progress-callback invocations (and cancellation
  /// checks). Smaller = more responsive cancellation, more overhead.
  uint64_t progress_interval_rows = 1024;
  /// Shard index stamped on progress updates; -1 = serial. The parallel
  /// driver sets this on each shard's policy copy.
  int shard = -1;
  /// Trace display lane for spans (0 = main thread, shards use
  /// shard + 1).
  int trace_lane = 0;

  bool has_progress() const { return static_cast<bool>(progress); }
};

/// Progress-check helper for simple scan loops: fires the callback when
/// `processed` lands on the interval; returns false iff the callback
/// requested cancellation.
inline bool CheckProgress(const ObserveContext& obs, const char* phase,
                          uint64_t processed, uint64_t total,
                          uint64_t live_candidates, uint64_t counter_bytes) {
  if (!obs.has_progress()) return true;
  const uint64_t interval =
      obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
  if (processed % interval != 0) return true;
  ProgressUpdate update;
  update.phase = phase;
  update.rows_processed = processed;
  update.total_rows = total;
  update.live_candidates = live_candidates;
  update.counter_bytes = counter_bytes;
  update.shard = obs.shard;
  return obs.progress(update);
}

}  // namespace dmc

#endif  // DMC_OBSERVE_PROGRESS_H_
