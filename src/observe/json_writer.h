// Minimal streaming JSON writer used by the observability exporters.
//
// Hand-rolled on purpose: the export surface is small (flat objects,
// arrays of numbers, one level of nesting for the trace format) and the
// repo takes no third-party JSON dependency. The writer emits
// deterministic, pretty-printed output so golden tests can diff it.

#ifndef DMC_OBSERVE_JSON_WRITER_H_
#define DMC_OBSERVE_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dmc {

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string JsonEscape(std::string_view s);

/// Renders a double the way the exporters need it: finite values via
/// shortest round-trip formatting, non-finite values as null (JSON has no
/// Inf/NaN).
std::string JsonNumber(double value);

/// Structured writer: Begin/End pairs manage indentation and commas.
/// Usage:
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("rows"); w.Value(100);
///   w.EndObject();
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one Value or
  /// Begin* call.
  void Key(std::string_view name);

  void Value(std::string_view s);
  void Value(const char* s) { Value(std::string_view(s)); }
  void Value(bool b);
  void Value(double d);
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(unsigned v) { Value(static_cast<uint64_t>(v)); }
  void Value(int64_t v);
  void Value(uint64_t v);  // also covers size_t on LP64
  void Null();

  /// Splices pre-rendered JSON in as one value (caller guarantees it is
  /// well-formed). Used for trace-event args objects.
  void Raw(std::string_view json);

 private:
  void Prefix();  // comma/newline/indent bookkeeping before an element
  void NewlineIndent();

  std::ostream& os_;
  int indent_;
  // One frame per open container: whether it has any elements yet.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace dmc

#endif  // DMC_OBSERVE_JSON_WRITER_H_
