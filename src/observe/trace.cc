#include "observe/trace.h"

#include <algorithm>
#include <tuple>

#include "observe/json_writer.h"

namespace dmc {

TraceSink::TraceSink() : epoch_(Clock::now()) {}

int64_t TraceSink::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void TraceSink::AddCompleteEvent(TraceEvent event) {
  MutexLock lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

void TraceSink::WriteChromeJson(std::ostream& os) const {
  std::vector<TraceEvent> events = Snapshot();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.ts_micros, a.tid) <
                            std::tie(b.ts_micros, b.tid);
                   });
  JsonWriter w(os, /*indent=*/2);
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& e : events) {
    // Chrome's trace viewer needs ph/pid/tid/ts/dur; args is optional.
    w.BeginObject();
    w.Key("name");
    w.Value(e.name);
    w.Key("ph");
    w.Value("X");
    w.Key("pid");
    w.Value(1);
    w.Key("tid");
    w.Value(e.tid);
    w.Key("ts");
    w.Value(e.ts_micros);
    w.Key("dur");
    w.Value(e.dur_micros);
    if (!e.args_json.empty()) {
      w.Key("args");
      w.Raw(e.args_json);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

}  // namespace dmc
