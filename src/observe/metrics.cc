#include "observe/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "observe/json_writer.h"

namespace dmc {

namespace {

// Default exponential buckets for auto-defined histograms: powers of
// four from 1 to 4^12 (~16.7M). Wide enough for row counts, candidate
// counts and byte sizes without pre-registration.
std::vector<double> DefaultBuckets() {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i <= 12; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

}  // namespace

void MetricsRegistry::IncrCounter(const std::string& name, uint64_t delta) {
  MutexLock lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::MaxGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_[name] = value;
  } else if (value > it->second) {
    it->second = value;
  }
}

void MetricsRegistry::RecordTimer(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  TimerStat& t = timers_[name];
  ++t.count;
  t.total_seconds += seconds;
  if (seconds > t.max_seconds) t.max_seconds = seconds;
}

void MetricsRegistry::MergeTimer(const std::string& name,
                                 const TimerStat& stat) {
  MutexLock lock(mu_);
  TimerStat& t = timers_[name];
  t.count += stat.count;
  t.total_seconds += stat.total_seconds;
  if (stat.max_seconds > t.max_seconds) t.max_seconds = stat.max_seconds;
}

void MetricsRegistry::DefineHistogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::sort(upper_bounds.begin(), upper_bounds.end());
  MutexLock lock(mu_);
  HistogramStat& h = histograms_[name];
  h.upper_bounds = std::move(upper_bounds);
  h.counts.assign(h.upper_bounds.size() + 1, 0);
  h.total = 0;
  h.sum = 0.0;
}

void MetricsRegistry::RecordHistogram(const std::string& name, double value) {
  MutexLock lock(mu_);
  HistogramStat& h = histograms_[name];
  if (h.counts.empty()) {
    h.upper_bounds = DefaultBuckets();
    h.counts.assign(h.upper_bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(h.upper_bounds.begin(), h.upper_bounds.end(), value);
  ++h.counts[static_cast<size_t>(it - h.upper_bounds.begin())];
  ++h.total;
  h.sum += value;
}

bool MetricsRegistry::MergeHistogram(const std::string& name,
                                     const HistogramStat& stat) {
  if (stat.counts.size() != stat.upper_bounds.size() + 1) return false;
  MutexLock lock(mu_);
  HistogramStat& h = histograms_[name];
  if (h.counts.empty()) {
    h.upper_bounds = stat.upper_bounds;
    h.counts.assign(h.upper_bounds.size() + 1, 0);
  } else if (h.upper_bounds != stat.upper_bounds) {
    return false;
  }
  for (size_t i = 0; i < h.counts.size(); ++i) h.counts[i] += stat.counts[i];
  h.total += stat.total;
  h.sum += stat.sum;
  return true;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::timer(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

HistogramStat MetricsRegistry::histogram(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStat{} : it->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  MutexLock lock(mu_);
  return gauges_;
}

std::map<std::string, TimerStat> MetricsRegistry::timers() const {
  MutexLock lock(mu_);
  return timers_;
}

std::map<std::string, HistogramStat> MetricsRegistry::histograms() const {
  MutexLock lock(mu_);
  return histograms_;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto timers = this->timers();
  const auto histograms = this->histograms();

  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : counters) {
    w.Key(name);
    w.Value(v);
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : gauges) {
    w.Key(name);
    w.Value(v);
  }
  w.EndObject();

  w.Key("timers");
  w.BeginObject();
  for (const auto& [name, t] : timers) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Value(t.count);
    w.Key("total_seconds");
    w.Value(t.total_seconds);
    w.Key("max_seconds");
    w.Value(t.max_seconds);
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("upper_bounds");
    w.BeginArray();
    for (double b : h.upper_bounds) w.Value(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.Key("total");
    w.Value(h.total);
    w.Key("sum");
    w.Value(h.sum);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  for (const auto& [name, v] : counters()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("counter");
    w.Key("name");
    w.Value(name);
    w.Key("value");
    w.Value(v);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, v] : gauges()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("gauge");
    w.Key("name");
    w.Value(name);
    w.Key("value");
    w.Value(v);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, t] : timers()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("timer");
    w.Key("name");
    w.Value(name);
    w.Key("count");
    w.Value(t.count);
    w.Key("total_seconds");
    w.Value(t.total_seconds);
    w.Key("max_seconds");
    w.Value(t.max_seconds);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, h] : histograms()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("histogram");
    w.Key("name");
    w.Value(name);
    w.Key("upper_bounds");
    w.BeginArray();
    for (double b : h.upper_bounds) w.Value(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.Key("total");
    w.Value(h.total);
    w.Key("sum");
    w.Value(h.sum);
    w.EndObject();
    os << '\n';
  }
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

namespace {

// Minimal parser for the flat objects WriteJsonl emits: string values
// without escapes worth preserving (metric names are plain), numbers,
// and arrays of numbers. Anything else fails the line.
class JsonlLineParser {
 public:
  explicit JsonlLineParser(std::string_view line) : s_(line) {}

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out->push_back(s_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  bool ParseNumberArray(std::vector<double>* out) {
    if (!Consume('[')) return false;
    out->clear();
    if (Consume(']')) return true;
    for (;;) {
      double v = 0.0;
      if (!ParseNumber(&v)) return false;
      out->push_back(v);
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// One line's decoded fields; only the keys WriteJsonl emits are known.
struct JsonlLine {
  std::string kind;
  std::string name;
  std::map<std::string, double> numbers;
  std::map<std::string, std::vector<double>> arrays;
};

bool ParseJsonlLine(std::string_view line, JsonlLine* out) {
  JsonlLineParser p(line);
  if (!p.Consume('{')) return false;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return false;
    first = false;
    std::string key;
    if (!p.ParseString(&key) || !p.Consume(':')) return false;
    if (p.Peek('"')) {
      std::string value;
      if (!p.ParseString(&value)) return false;
      if (key == "kind") {
        out->kind = value;
      } else if (key == "name") {
        out->name = value;
      } else {
        return false;
      }
    } else if (p.Peek('[')) {
      if (!p.ParseNumberArray(&out->arrays[key])) return false;
    } else {
      if (!p.ParseNumber(&out->numbers[key])) return false;
    }
  }
  return p.Consume('}') && p.AtEnd();
}

}  // namespace

Status MergeMetricsJsonl(std::string_view jsonl, MetricsRegistry* registry) {
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= jsonl.size()) {
    const size_t eol = jsonl.find('\n', pos);
    const std::string_view line =
        jsonl.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                        : eol - pos);
    pos = eol == std::string_view::npos ? jsonl.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonlLine parsed;
    if (!ParseJsonlLine(line, &parsed) || parsed.name.empty()) {
      return InvalidArgumentError("metrics jsonl line " +
                                  std::to_string(line_no) +
                                  " is not a metrics object");
    }
    if (parsed.kind == "counter") {
      const auto it = parsed.numbers.find("value");
      if (it == parsed.numbers.end()) {
        return InvalidArgumentError("metrics jsonl line " +
                                    std::to_string(line_no) +
                                    ": counter without value");
      }
      registry->IncrCounter(parsed.name, static_cast<uint64_t>(it->second));
    } else if (parsed.kind == "gauge") {
      const auto it = parsed.numbers.find("value");
      if (it == parsed.numbers.end()) {
        return InvalidArgumentError("metrics jsonl line " +
                                    std::to_string(line_no) +
                                    ": gauge without value");
      }
      // Max, not overwrite: worker gauges are peaks, and the merged
      // document should carry the fleet-wide peak.
      registry->MaxGauge(parsed.name, it->second);
    } else if (parsed.kind == "timer") {
      TimerStat t;
      t.count = static_cast<uint64_t>(parsed.numbers["count"]);
      t.total_seconds = parsed.numbers["total_seconds"];
      t.max_seconds = parsed.numbers["max_seconds"];
      registry->MergeTimer(parsed.name, t);
    } else if (parsed.kind == "histogram") {
      const auto& bounds = parsed.arrays["upper_bounds"];
      const auto& counts = parsed.arrays["counts"];
      if (counts.size() != bounds.size() + 1) {
        return InvalidArgumentError("metrics jsonl line " +
                                    std::to_string(line_no) +
                                    ": histogram count/bounds mismatch");
      }
      HistogramStat h;
      h.upper_bounds = bounds;
      h.counts.reserve(counts.size());
      for (double c : counts) h.counts.push_back(static_cast<uint64_t>(c));
      h.total = static_cast<uint64_t>(parsed.numbers["total"]);
      h.sum = parsed.numbers["sum"];
      // A bucket-layout mismatch with an existing histogram cannot be
      // combined meaningfully; MergeHistogram drops it, which we accept.
      (void)registry->MergeHistogram(parsed.name, h);
    } else {
      return InvalidArgumentError("metrics jsonl line " +
                                  std::to_string(line_no) +
                                  ": unknown kind \"" + parsed.kind + "\"");
    }
  }
  return Status::OK();
}

}  // namespace dmc
