#include "observe/metrics.h"

#include <algorithm>

#include "observe/json_writer.h"

namespace dmc {

namespace {

// Default exponential buckets for auto-defined histograms: powers of
// four from 1 to 4^12 (~16.7M). Wide enough for row counts, candidate
// counts and byte sizes without pre-registration.
std::vector<double> DefaultBuckets() {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i <= 12; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

}  // namespace

void MetricsRegistry::IncrCounter(const std::string& name, uint64_t delta) {
  MutexLock lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::MaxGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_[name] = value;
  } else if (value > it->second) {
    it->second = value;
  }
}

void MetricsRegistry::RecordTimer(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  TimerStat& t = timers_[name];
  ++t.count;
  t.total_seconds += seconds;
  if (seconds > t.max_seconds) t.max_seconds = seconds;
}

void MetricsRegistry::DefineHistogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::sort(upper_bounds.begin(), upper_bounds.end());
  MutexLock lock(mu_);
  HistogramStat& h = histograms_[name];
  h.upper_bounds = std::move(upper_bounds);
  h.counts.assign(h.upper_bounds.size() + 1, 0);
  h.total = 0;
  h.sum = 0.0;
}

void MetricsRegistry::RecordHistogram(const std::string& name, double value) {
  MutexLock lock(mu_);
  HistogramStat& h = histograms_[name];
  if (h.counts.empty()) {
    h.upper_bounds = DefaultBuckets();
    h.counts.assign(h.upper_bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(h.upper_bounds.begin(), h.upper_bounds.end(), value);
  ++h.counts[static_cast<size_t>(it - h.upper_bounds.begin())];
  ++h.total;
  h.sum += value;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

TimerStat MetricsRegistry::timer(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

HistogramStat MetricsRegistry::histogram(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStat{} : it->second;
}

std::map<std::string, uint64_t> MetricsRegistry::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  MutexLock lock(mu_);
  return gauges_;
}

std::map<std::string, TimerStat> MetricsRegistry::timers() const {
  MutexLock lock(mu_);
  return timers_;
}

std::map<std::string, HistogramStat> MetricsRegistry::histograms() const {
  MutexLock lock(mu_);
  return histograms_;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto timers = this->timers();
  const auto histograms = this->histograms();

  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, v] : counters) {
    w.Key(name);
    w.Value(v);
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, v] : gauges) {
    w.Key(name);
    w.Value(v);
  }
  w.EndObject();

  w.Key("timers");
  w.BeginObject();
  for (const auto& [name, t] : timers) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Value(t.count);
    w.Key("total_seconds");
    w.Value(t.total_seconds);
    w.Key("max_seconds");
    w.Value(t.max_seconds);
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("upper_bounds");
    w.BeginArray();
    for (double b : h.upper_bounds) w.Value(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.Key("total");
    w.Value(h.total);
    w.Key("sum");
    w.Value(h.sum);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  for (const auto& [name, v] : counters()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("counter");
    w.Key("name");
    w.Value(name);
    w.Key("value");
    w.Value(v);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, v] : gauges()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("gauge");
    w.Key("name");
    w.Value(name);
    w.Key("value");
    w.Value(v);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, t] : timers()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("timer");
    w.Key("name");
    w.Value(name);
    w.Key("count");
    w.Value(t.count);
    w.Key("total_seconds");
    w.Value(t.total_seconds);
    w.Key("max_seconds");
    w.Value(t.max_seconds);
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, h] : histograms()) {
    JsonWriter w(os, /*indent=*/0);
    w.BeginObject();
    w.Key("kind");
    w.Value("histogram");
    w.Key("name");
    w.Value(name);
    w.Key("upper_bounds");
    w.BeginArray();
    for (double b : h.upper_bounds) w.Value(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.Key("total");
    w.Value(h.total);
    w.Key("sum");
    w.Value(h.sum);
    w.EndObject();
    os << '\n';
  }
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

}  // namespace dmc
