#include "observe/stats_export.h"

#include <sstream>

#include "core/external_miner.h"
#include "core/mining_stats.h"
#include "core/parallel_dmc.h"
#include "observe/json_writer.h"
#include "observe/metrics.h"
#include "shard/shard_stats.h"
#include "util/atomic_io.h"

namespace dmc {

void WriteJson(JsonWriter& w, const MiningStats& stats) {
  w.BeginObject();
  w.Key("prescan_seconds");
  w.Value(stats.prescan_seconds);
  w.Key("hundred_base_seconds");
  w.Value(stats.hundred_base_seconds);
  w.Key("hundred_bitmap_seconds");
  w.Value(stats.hundred_bitmap_seconds);
  w.Key("sub_base_seconds");
  w.Value(stats.sub_base_seconds);
  w.Key("sub_bitmap_seconds");
  w.Value(stats.sub_bitmap_seconds);
  w.Key("total_seconds");
  w.Value(stats.total_seconds);
  w.Key("peak_counter_bytes");
  w.Value(stats.peak_counter_bytes);
  w.Key("peak_candidates");
  w.Value(stats.peak_candidates);
  w.Key("hundred_bitmap_triggered");
  w.Value(stats.hundred_bitmap_triggered);
  w.Key("sub_bitmap_triggered");
  w.Value(stats.sub_bitmap_triggered);
  w.Key("sub_bitmap_rows");
  w.Value(stats.sub_bitmap_rows);
  w.Key("rules_from_hundred_phase");
  w.Value(stats.rules_from_hundred_phase);
  w.Key("rules_from_sub_phase");
  w.Value(stats.rules_from_sub_phase);
  w.Key("columns_cut_off");
  w.Value(stats.columns_cut_off);
  if (!stats.kernel.empty()) {
    w.Key("kernel");
    w.Value(stats.kernel);
  }
  if (!stats.memory_history.empty()) {
    w.Key("memory_history");
    w.BeginArray();
    for (size_t v : stats.memory_history) w.Value(v);
    w.EndArray();
  }
  if (!stats.candidate_history.empty()) {
    w.Key("candidate_history");
    w.BeginArray();
    for (size_t v : stats.candidate_history) w.Value(v);
    w.EndArray();
  }
  w.EndObject();
}

void WriteJson(JsonWriter& w, const ParallelMiningStats& stats) {
  w.BeginObject();
  w.Key("total_seconds");
  w.Value(stats.total_seconds);
  w.Key("max_shard_seconds");
  w.Value(stats.max_shard_seconds);
  w.Key("sum_shard_seconds");
  w.Value(stats.sum_shard_seconds);
  w.Key("sum_peak_counter_bytes");
  w.Value(stats.sum_peak_counter_bytes);
  w.Key("max_peak_counter_bytes");
  w.Value(stats.max_peak_counter_bytes);
  w.Key("shards");
  w.Value(stats.shards);
  w.Key("shards_failed");
  w.Value(stats.shards_failed);
  w.Key("shard_retries");
  w.Value(stats.shard_retries);
  w.Key("shards_degraded");
  w.Value(stats.shards_degraded);
  if (!stats.shard_errors.empty()) {
    w.Key("shard_errors");
    w.BeginArray();
    for (const std::string& e : stats.shard_errors) w.Value(e);
    w.EndArray();
  }
  if (!stats.per_shard.empty()) {
    w.Key("per_shard");
    w.BeginArray();
    for (const MiningStats& s : stats.per_shard) WriteJson(w, s);
    w.EndArray();
  }
  w.EndObject();
}

void WriteJson(JsonWriter& w, const ExternalMiningStats& stats) {
  w.BeginObject();
  w.Key("pass1_seconds");
  w.Value(stats.pass1_seconds);
  w.Key("partition_seconds");
  w.Value(stats.partition_seconds);
  w.Key("mine_seconds");
  w.Value(stats.mine_seconds);
  w.Key("total_seconds");
  w.Value(stats.total_seconds);
  w.Key("rows");
  w.Value(stats.rows);
  w.Key("columns");
  w.Value(stats.columns);
  w.Key("bucket_files");
  w.Value(stats.bucket_files);
  w.Key("resumed");
  w.Value(stats.resumed);
  w.Key("io_retries");
  w.Value(stats.io_retries);
  w.EndObject();
}

void WriteJson(JsonWriter& w, const shard::ShardMiningStats& stats) {
  w.BeginObject();
  w.Key("tasks_total");
  w.Value(stats.tasks_total);
  w.Key("workers_spawned");
  w.Value(stats.workers_spawned);
  w.Key("workers_died");
  w.Value(stats.workers_died);
  w.Key("tasks_reassigned");
  w.Value(stats.tasks_reassigned);
  w.Key("heartbeats");
  w.Value(stats.heartbeats);
  w.Key("checkpoint_hits");
  w.Value(stats.checkpoint_hits);
  w.Key("degraded_tasks");
  w.Value(stats.degraded_tasks);
  w.Key("pass1_seconds");
  w.Value(stats.pass1_seconds);
  w.Key("mine_seconds");
  w.Value(stats.mine_seconds);
  w.Key("total_seconds");
  w.Value(stats.total_seconds);
  w.Key("resumed");
  w.Value(stats.resumed);
  w.EndObject();
}

Status ExportMetricsJson(const MetricsReport& report, std::ostream& os) {
  JsonWriter w(os, /*indent=*/2);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("tool");
  w.Value(report.tool);
  w.Key("dataset");
  w.Value(report.dataset);
  w.Key("labels");
  w.BeginObject();
  for (const auto& [k, v] : report.labels) {
    w.Key(k);
    w.Value(v);
  }
  w.EndObject();
  if (report.rules_total >= 0) {
    w.Key("rules_total");
    w.Value(report.rules_total);
  }
  if (report.mining != nullptr) {
    w.Key("mining");
    WriteJson(w, *report.mining);
  }
  if (report.parallel != nullptr) {
    w.Key("parallel");
    WriteJson(w, *report.parallel);
  }
  if (report.external != nullptr) {
    w.Key("external");
    WriteJson(w, *report.external);
  }
  if (report.shard != nullptr) {
    w.Key("shard");
    WriteJson(w, *report.shard);
  }
  if (report.metrics != nullptr) {
    w.Key("metrics");
    report.metrics->WriteJson(w);
  }
  w.EndObject();
  os << '\n';
  if (!os.good()) return IOError("metrics export stream write failed");
  return Status::OK();
}

Status ExportMetricsJsonFile(const MetricsReport& report,
                             const std::string& path) {
  // Serialize to memory first so the on-disk file is replaced atomically:
  // a crash mid-export leaves the previous document (or none), never a
  // truncated one.
  std::ostringstream buffer;
  DMC_RETURN_IF_ERROR(ExportMetricsJson(report, buffer));
  return AtomicWriteFile(path, buffer.str());
}

void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const MiningStats& stats) {
  if (registry == nullptr) return;
  registry->RecordTimer(prefix + ".prescan_seconds", stats.prescan_seconds);
  registry->RecordTimer(prefix + ".hundred_base_seconds",
                        stats.hundred_base_seconds);
  registry->RecordTimer(prefix + ".hundred_bitmap_seconds",
                        stats.hundred_bitmap_seconds);
  registry->RecordTimer(prefix + ".sub_base_seconds", stats.sub_base_seconds);
  registry->RecordTimer(prefix + ".sub_bitmap_seconds",
                        stats.sub_bitmap_seconds);
  registry->RecordTimer(prefix + ".total_seconds", stats.total_seconds);
  registry->MaxGauge(prefix + ".peak_counter_bytes",
                     static_cast<double>(stats.peak_counter_bytes));
  registry->MaxGauge(prefix + ".peak_candidates",
                     static_cast<double>(stats.peak_candidates));
  registry->IncrCounter(prefix + ".rules_from_hundred_phase",
                        stats.rules_from_hundred_phase);
  registry->IncrCounter(prefix + ".rules_from_sub_phase",
                        stats.rules_from_sub_phase);
  registry->IncrCounter(prefix + ".columns_cut_off", stats.columns_cut_off);
  if (stats.hundred_bitmap_triggered) {
    registry->IncrCounter(prefix + ".hundred_bitmap_triggered");
  }
  if (stats.sub_bitmap_triggered) {
    registry->IncrCounter(prefix + ".sub_bitmap_triggered");
  }
}

void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const ParallelMiningStats& stats) {
  if (registry == nullptr) return;
  registry->RecordTimer(prefix + ".total_seconds", stats.total_seconds);
  registry->RecordTimer(prefix + ".max_shard_seconds",
                        stats.max_shard_seconds);
  registry->RecordTimer(prefix + ".sum_shard_seconds",
                        stats.sum_shard_seconds);
  registry->MaxGauge(prefix + ".sum_peak_counter_bytes",
                     static_cast<double>(stats.sum_peak_counter_bytes));
  registry->MaxGauge(prefix + ".max_peak_counter_bytes",
                     static_cast<double>(stats.max_peak_counter_bytes));
  registry->SetGauge(prefix + ".shards", stats.shards);
  registry->IncrCounter(prefix + ".shards_failed", stats.shards_failed);
  registry->IncrCounter(prefix + ".shard_retries", stats.shard_retries);
  registry->IncrCounter(prefix + ".shards_degraded", stats.shards_degraded);
}

void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const ExternalMiningStats& stats) {
  if (registry == nullptr) return;
  registry->RecordTimer(prefix + ".pass1_seconds", stats.pass1_seconds);
  registry->RecordTimer(prefix + ".partition_seconds",
                        stats.partition_seconds);
  registry->RecordTimer(prefix + ".mine_seconds", stats.mine_seconds);
  registry->RecordTimer(prefix + ".total_seconds", stats.total_seconds);
  registry->IncrCounter(prefix + ".rows", stats.rows);
  registry->SetGauge(prefix + ".columns", stats.columns);
  registry->SetGauge(prefix + ".bucket_files",
                     static_cast<double>(stats.bucket_files));
  registry->SetGauge(prefix + ".resumed", stats.resumed ? 1.0 : 0.0);
  registry->IncrCounter(prefix + ".io_retries", stats.io_retries);
}

void RecordToRegistry(MetricsRegistry* registry, const std::string& prefix,
                      const shard::ShardMiningStats& stats) {
  if (registry == nullptr) return;
  registry->SetGauge(prefix + ".tasks_total", stats.tasks_total);
  registry->IncrCounter(prefix + ".workers_spawned", stats.workers_spawned);
  registry->IncrCounter(prefix + ".workers_died", stats.workers_died);
  registry->IncrCounter(prefix + ".tasks_reassigned", stats.tasks_reassigned);
  registry->IncrCounter(prefix + ".heartbeats", stats.heartbeats);
  registry->IncrCounter(prefix + ".checkpoint_hits", stats.checkpoint_hits);
  registry->IncrCounter(prefix + ".degraded_tasks", stats.degraded_tasks);
  registry->RecordTimer(prefix + ".pass1_seconds", stats.pass1_seconds);
  registry->RecordTimer(prefix + ".mine_seconds", stats.mine_seconds);
  registry->RecordTimer(prefix + ".total_seconds", stats.total_seconds);
  registry->SetGauge(prefix + ".resumed", stats.resumed ? 1.0 : 0.0);
}

}  // namespace dmc
