// Thread-safe metrics registry: counters, gauges, timers, and
// fixed-bucket histograms, keyed by name.
//
// Design notes (see README "Observability"):
//   * The registry is pull-model: engines record into it, exporters read
//     a snapshot. All maps are std::map so exports are sorted and
//     deterministic — golden tests diff the output byte-for-byte.
//   * Every mutation takes one mutex. The registry sits outside the
//     per-row hot loops (engines record per phase or per progress
//     interval), so a single lock is cheap and keeps TSan trivially
//     happy across parallel shards.
//   * A null `MetricsRegistry*` everywhere means "disabled"; the helpers
//     (ScopedTimer, free functions) no-op without reading a clock.

#ifndef DMC_OBSERVE_METRICS_H_
#define DMC_OBSERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace dmc {

class JsonWriter;

/// Aggregated timer: call-count plus total/max elapsed seconds.
struct TimerStat {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Fixed-bucket histogram. `upper_bounds` are inclusive bucket tops in
/// ascending order; `counts` has one extra slot for the overflow bucket.
struct HistogramStat {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;  // size = upper_bounds.size() + 1
  uint64_t total = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void IncrCounter(const std::string& name, uint64_t delta = 1);
  void SetGauge(const std::string& name, double value);
  /// Sets the gauge to max(current, value); missing gauges start at
  /// `value`. Used for peaks merged across parallel shards.
  void MaxGauge(const std::string& name, double value);
  void RecordTimer(const std::string& name, double seconds);
  /// Folds an already-aggregated timer into the named timer: counts and
  /// totals add, maxima take the max. Used when merging another
  /// registry's export (e.g. a shard worker's JSONL dump).
  void MergeTimer(const std::string& name, const TimerStat& stat);

  /// Defines histogram buckets ahead of recording. Recording into an
  /// undefined histogram auto-defines default buckets (powers of four
  /// from 1 to ~4^12) so callers never have to pre-register.
  void DefineHistogram(const std::string& name,
                       std::vector<double> upper_bounds);
  void RecordHistogram(const std::string& name, double value);
  /// Folds an already-aggregated histogram into the named one. The
  /// existing histogram must be absent or have identical bucket bounds;
  /// returns false (and records nothing) on a bucket-layout mismatch.
  bool MergeHistogram(const std::string& name, const HistogramStat& stat);

  // Snapshot accessors (each copies under the lock).
  uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  TimerStat timer(const std::string& name) const;
  HistogramStat histogram(const std::string& name) const;
  std::map<std::string, uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;
  std::map<std::string, HistogramStat> histograms() const;

  /// Writes the registry as one JSON object with "counters", "gauges",
  /// "timers" and "histograms" sub-objects (names sorted).
  void WriteJson(JsonWriter& w) const;

  /// Writes one JSON object per line ({"kind","name",...fields}) — the
  /// flat JSONL dump consumed by plotting scripts.
  void WriteJsonl(std::ostream& os) const;

  void Clear();

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> counters_ DMC_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ DMC_GUARDED_BY(mu_);
  std::map<std::string, TimerStat> timers_ DMC_GUARDED_BY(mu_);
  std::map<std::string, HistogramStat> histograms_ DMC_GUARDED_BY(mu_);
};

/// Folds one MetricsRegistry::WriteJsonl dump into `registry`: counters
/// add, gauges take the max (worker exports carry peaks), timers fold
/// via MergeTimer, histograms merge when their bucket bounds match and
/// are dropped otherwise. Blank lines are skipped; a line that is not a
/// recognizable metrics object yields kInvalidArgument naming the line.
/// Used by the shard coordinator to aggregate per-worker metrics files
/// into one schema-v1 document.
[[nodiscard]] Status MergeMetricsJsonl(std::string_view jsonl,
                                       MetricsRegistry* registry);

/// RAII timer recording into `registry` on destruction; a null registry
/// disables it entirely (no clock read).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    if (registry_ != nullptr) sw_.Restart();
  }
  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->RecordTimer(name_, sw_.ElapsedSeconds());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Stopwatch sw_;
};

}  // namespace dmc

#endif  // DMC_OBSERVE_METRICS_H_
