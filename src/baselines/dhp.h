// DHP [Park, Chen, Yu SIGMOD'95] — the hash-based candidate-pruning
// refinement of a-priori the paper discusses in §3.1.
//
// Pass 1 counts singleton supports AND hashes every pair of the row into
// a small bucket-count array. Pass 2 only allocates exact counters for
// pairs of frequent columns whose bucket reached min_support (a pair
// cannot be frequent if its bucket is not). This prunes most counters on
// sparse data but, as the paper notes, does not fix the fundamental
// m^2 problem when many columns survive.

#ifndef DMC_BASELINES_DHP_H_
#define DMC_BASELINES_DHP_H_

#include <cstdint>
#include <limits>

#include "matrix/binary_matrix.h"
#include "observe/progress.h"
#include "rules/rule_set.h"

namespace dmc {

struct DhpOptions {
  uint64_t min_support = 1;
  uint64_t max_support = std::numeric_limits<uint64_t>::max();
  /// Number of hash buckets for the pair filter.
  size_t num_buckets = 1 << 20;
  /// Observability hooks; on cancellation the miner returns an empty
  /// rule set with stats->cancelled set.
  ObserveContext observe;
};

struct DhpStats {
  double pass1_seconds = 0.0;
  double pass2_seconds = 0.0;
  double total_seconds = 0.0;
  size_t frequent_columns = 0;
  /// Exact pair counters allocated in pass 2.
  size_t exact_counters = 0;
  /// Bytes: bucket array + exact counter map.
  size_t counter_bytes = 0;
  /// Set when the progress callback cancelled the mine (result empty).
  bool cancelled = false;
};

/// All implication rules with confidence >= min_confidence whose pair
/// support reaches min_support (DHP prunes pairs below min_support, so —
/// unlike DMC — low-support rules are lost by design).
ImplicationRuleSet DhpImplications(const BinaryMatrix& m,
                                   const DhpOptions& options,
                                   double min_confidence,
                                   DhpStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_BASELINES_DHP_H_
