#include "baselines/bruteforce.h"

#include <unordered_map>

#include "core/thresholds.h"
#include "rules/rule.h"

namespace dmc {

namespace {

// Pair key with the smaller id in the high word for stable iteration.
inline uint64_t PairKey(ColumnId a, ColumnId b) {
  if (a > b) std::swap(a, b);
  return (uint64_t{a} << 32) | b;
}

std::unordered_map<uint64_t, uint32_t> CountCoOccurrences(
    const BinaryMatrix& m) {
  std::unordered_map<uint64_t, uint32_t> inter;
  for (RowId r = 0; r < m.num_rows(); ++r) {
    const auto row = m.Row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      for (size_t j = i + 1; j < row.size(); ++j) {
        ++inter[PairKey(row[i], row[j])];
      }
    }
  }
  return inter;
}

}  // namespace

ImplicationRuleSet BruteForceImplications(const BinaryMatrix& m,
                                          double min_confidence) {
  const auto& ones = m.column_ones();
  ImplicationRuleSet out;
  for (const auto& [key, hits] : CountCoOccurrences(m)) {
    const ColumnId a = static_cast<ColumnId>(key >> 32);
    const ColumnId b = static_cast<ColumnId>(key & 0xffffffffu);
    // Only sparser => denser (ties by id), as defined in §2.
    const ColumnId lhs = SparserFirst(ones[a], a, ones[b], b) ? a : b;
    const ColumnId rhs = lhs == a ? b : a;
    const uint32_t misses = ones[lhs] - hits;
    if (static_cast<int64_t>(misses) <=
        MaxMissesForConfidence(ones[lhs], min_confidence)) {
      out.Add(ImplicationRule{lhs, rhs, ones[lhs], misses});
    }
  }
  out.Canonicalize();
  return out;
}

SimilarityRuleSet BruteForceSimilarities(const BinaryMatrix& m,
                                         double min_similarity) {
  const auto& ones = m.column_ones();
  SimilarityRuleSet out;
  for (const auto& [key, hits] : CountCoOccurrences(m)) {
    const ColumnId a = static_cast<ColumnId>(key >> 32);
    const ColumnId b = static_cast<ColumnId>(key & 0xffffffffu);
    const ColumnId lo = SparserFirst(ones[a], a, ones[b], b) ? a : b;
    const ColumnId hi = lo == a ? b : a;
    if (static_cast<int64_t>(hits) >=
        MinHitsForSimilarity(ones[lo], ones[hi], min_similarity)) {
      out.Add(SimilarityPair{lo, hi, ones[lo], ones[hi], hits});
    }
  }
  out.Canonicalize();
  return out;
}

}  // namespace dmc
