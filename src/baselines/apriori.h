// A-priori pair mining [Agrawal et al. 93/94] — the paper's primary
// comparator (§3.1, Fig. 6(i,j)).
//
// Two passes: (1) count singleton supports and keep columns inside the
// support window, (2) count all pairs of frequent columns in a triangular
// counter array, then filter by confidence or similarity. The triangular
// array is exactly the "m(m-1)/2 counters" cost the paper criticizes —
// its size is reported in the stats so the memory comparison can be
// reproduced.

#ifndef DMC_BASELINES_APRIORI_H_
#define DMC_BASELINES_APRIORI_H_

#include <cstdint>
#include <limits>

#include "matrix/binary_matrix.h"
#include "observe/progress.h"
#include "rules/rule_set.h"
#include "util/statusor.h"

namespace dmc {

struct AprioriOptions {
  /// Support window [min_support, max_support] on ones(c); columns outside
  /// are pruned in pass 1 (max_support implements stop-word pruning, as in
  /// the paper's NewsP preparation).
  uint64_t min_support = 1;
  uint64_t max_support = std::numeric_limits<uint64_t>::max();
  /// Observability hooks (progress/cancel fires during the pass-2 row
  /// scan with phase "pair_count"); cancellation returns
  /// Status(kCancelled).
  ObserveContext observe;
};

struct AprioriStats {
  double pass1_seconds = 0.0;
  double pass2_seconds = 0.0;
  double total_seconds = 0.0;
  /// Columns surviving the support window.
  size_t frequent_columns = 0;
  /// Bytes of the triangular pair-counter array.
  size_t counter_bytes = 0;
  /// Pairs with non-zero co-occurrence.
  size_t occupied_counters = 0;
};

/// All implication rules with confidence >= min_confidence among columns
/// inside the support window. Fails if the counter array would exceed
/// `max_counter_bytes` (mirrors the paper's observation that a-priori
/// simply cannot run when the counters do not fit).
[[nodiscard]] StatusOr<ImplicationRuleSet> AprioriImplications(
    const BinaryMatrix& m, const AprioriOptions& options,
    double min_confidence, AprioriStats* stats = nullptr,
    size_t max_counter_bytes = size_t{8} << 30);

/// All similarity pairs with similarity >= min_similarity among columns
/// inside the support window.
[[nodiscard]] StatusOr<SimilarityRuleSet> AprioriSimilarities(
    const BinaryMatrix& m, const AprioriOptions& options,
    double min_similarity, AprioriStats* stats = nullptr,
    size_t max_counter_bytes = size_t{8} << 30);

}  // namespace dmc

#endif  // DMC_BASELINES_APRIORI_H_
