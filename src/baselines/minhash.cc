#include "baselines/minhash.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/thresholds.h"
#include "observe/trace.h"
#include "rules/verifier.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

inline uint64_t PairKey(ColumnId a, ColumnId b) {
  if (a > b) std::swap(a, b);
  return (uint64_t{a} << 32) | b;
}

// Hash of row r under hash function t.
inline uint64_t RowHash(uint64_t seed, uint32_t t, RowId r) {
  return Mix64(seed ^ (uint64_t{t} * 0x9e3779b97f4a7c15ULL) ^
               (uint64_t{r} << 24 | r));
}

}  // namespace

std::vector<uint64_t> ComputeMinHashSignatures(const BinaryMatrix& m,
                                               uint32_t num_hashes,
                                               uint64_t seed) {
  return ComputeMinHashSignatures(m, num_hashes, seed, ObserveContext{},
                                  "signatures", nullptr);
}

std::vector<uint64_t> ComputeMinHashSignatures(
    const BinaryMatrix& m, uint32_t num_hashes, uint64_t seed,
    const ObserveContext& observe, const char* phase, bool* cancelled) {
  std::vector<uint64_t> sig(
      size_t{m.num_columns()} * num_hashes,
      std::numeric_limits<uint64_t>::max());
  const uint64_t sig_bytes = sig.size() * sizeof(uint64_t);
  for (RowId r = 0; r < m.num_rows(); ++r) {
    if (!CheckProgress(observe, phase, r, m.num_rows(), 0, sig_bytes)) {
      if (cancelled != nullptr) *cancelled = true;
      return sig;
    }
    const auto row = m.Row(r);
    if (row.empty()) continue;
    for (uint32_t t = 0; t < num_hashes; ++t) {
      const uint64_t h = RowHash(seed, t, r);
      for (ColumnId c : row) {
        uint64_t& slot = sig[size_t{c} * num_hashes + t];
        if (h < slot) slot = h;
      }
    }
  }
  return sig;
}

double EstimateSimilarity(const std::vector<uint64_t>& signatures,
                          uint32_t num_hashes, ColumnId a, ColumnId b) {
  uint32_t agree = 0;
  for (uint32_t t = 0; t < num_hashes; ++t) {
    if (signatures[size_t{a} * num_hashes + t] ==
        signatures[size_t{b} * num_hashes + t]) {
      ++agree;
    }
  }
  return num_hashes == 0 ? 0.0 : double(agree) / double(num_hashes);
}

SimilarityRuleSet MinHashSimilarities(const BinaryMatrix& m,
                                      const MinHashOptions& options,
                                      double min_similarity,
                                      MinHashStats* stats) {
  MinHashStats local;
  if (stats == nullptr) stats = &local;
  *stats = MinHashStats{};
  Stopwatch total_sw;

  const auto& ones = m.column_ones();
  const ObserveContext& obs = options.observe;

  Stopwatch sig_sw;
  std::vector<uint64_t> sig;
  {
    ScopedSpan span(obs.trace, "minhash/signatures", obs.trace_lane);
    sig = ComputeMinHashSignatures(m, options.num_hashes, options.seed, obs,
                                   "minhash_signatures",
                                   &stats->cancelled);
  }
  stats->signature_seconds = sig_sw.ElapsedSeconds();
  stats->signature_bytes = sig.size() * sizeof(uint64_t);
  if (stats->cancelled) {
    stats->total_seconds = total_sw.ElapsedSeconds();
    return SimilarityRuleSet{};
  }

  // Vote counting: under each hash function, columns sharing the same
  // min-hash value vote for every pair inside the group.
  Stopwatch cand_sw;
  std::unordered_map<uint64_t, uint32_t> votes;
  votes.reserve(size_t{1} << 20);
  // Sort-based grouping: columns sharing a min-hash value form a
  // contiguous run of the sorted (value, column) sequence.
  std::vector<std::pair<uint64_t, ColumnId>> keyed;
  keyed.reserve(m.num_columns());
  {
    ScopedSpan span(obs.trace, "minhash/votes", obs.trace_lane);
    for (uint32_t t = 0; t < options.num_hashes; ++t) {
      if (!CheckProgress(obs, "minhash_votes", t, options.num_hashes,
                         votes.size(), stats->signature_bytes)) {
        stats->cancelled = true;
        break;
      }
      keyed.clear();
      for (ColumnId c = 0; c < m.num_columns(); ++c) {
        if (ones[c] < options.min_support) continue;
        const uint64_t v = sig[size_t{c} * options.num_hashes + t];
        if (v == std::numeric_limits<uint64_t>::max()) continue;  // empty
        keyed.emplace_back(v, c);
      }
      std::sort(keyed.begin(), keyed.end());
      size_t i = 0;
      while (i < keyed.size()) {
        size_t j = i + 1;
        while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
        if (j - i > options.max_group) {
          ++stats->skipped_groups;
        } else {
          for (size_t a = i; a < j; ++a) {
            for (size_t b = a + 1; b < j; ++b) {
              ++votes[PairKey(keyed[a].second, keyed[b].second)];
            }
          }
        }
        i = j;
      }
    }
  }
  if (stats->cancelled) {
    stats->candidate_seconds = cand_sw.ElapsedSeconds();
    stats->total_seconds = total_sw.ElapsedSeconds();
    return SimilarityRuleSet{};
  }

  // Candidate selection by estimated similarity.
  const double cutoff =
      (min_similarity - options.candidate_slack) * options.num_hashes;
  std::vector<std::pair<ColumnId, ColumnId>> candidates;
  for (const auto& [key, v] : votes) {
    if (static_cast<double>(v) >= cutoff) {
      candidates.emplace_back(static_cast<ColumnId>(key >> 32),
                              static_cast<ColumnId>(key & 0xffffffffu));
    }
  }
  stats->candidate_pairs = candidates.size();
  stats->candidate_seconds = cand_sw.ElapsedSeconds();

  SimilarityRuleSet out;
  Stopwatch verify_sw;
  ScopedSpan verify_span(obs.trace, "minhash/verify", obs.trace_lane);
  if (options.verify) {
    RuleVerifier verifier(m);
    for (const auto& [a, b] : candidates) {
      const SimilarityPair p = verifier.MakeSimilarity(a, b);
      if (static_cast<int64_t>(p.intersection) >=
          MinHitsForSimilarity(p.ones_a, p.ones_b, min_similarity)) {
        out.Add(p);
      } else {
        ++stats->false_positives_removed;
      }
    }
  } else {
    // Unverified output: counts are estimates derived from the vote
    // fraction (|intersection| = s/(1+s) * (|a|+|b|)).
    for (const auto& [a, b] : candidates) {
      const double est = EstimateSimilarity(sig, options.num_hashes, a, b);
      SimilarityPair p;
      p.a = a;
      p.b = b;
      p.ones_a = ones[a];
      p.ones_b = ones[b];
      if (!SparserFirst(p.ones_a, p.a, p.ones_b, p.b)) {
        std::swap(p.a, p.b);
        std::swap(p.ones_a, p.ones_b);
      }
      p.intersection = static_cast<uint32_t>(
          est / (1.0 + est) * (double(p.ones_a) + double(p.ones_b)) + 0.5);
      p.intersection = std::min(p.intersection, p.ones_a);
      if (p.similarity() >= min_similarity - kThresholdEpsilon) out.Add(p);
    }
  }
  stats->verify_seconds = verify_sw.ElapsedSeconds();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

}  // namespace dmc
