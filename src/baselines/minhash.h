// Min-Hash similarity mining [Cohen 97; Cohen et al. ICDE'00] — the
// randomized comparator of §3.2 and Fig. 6(j).
//
// k min-hash values per column estimate Jaccard similarity; candidate
// pairs are collected by vote counting (columns sharing a min-hash value
// under one hash function vote for the pair), then optionally verified
// exactly. Without verification the output may contain false positives;
// even with verification, pairs that never share a min-hash value are
// false negatives — exactly the behaviour the paper contrasts DMC against.

#ifndef DMC_BASELINES_MINHASH_H_
#define DMC_BASELINES_MINHASH_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"
#include "observe/progress.h"
#include "rules/rule_set.h"

namespace dmc {

struct MinHashOptions {
  /// Number of independent min-hash functions (k).
  uint32_t num_hashes = 100;
  /// Candidate threshold slack: pairs with estimated similarity >=
  /// min_similarity - candidate_slack become candidates.
  double candidate_slack = 0.05;
  /// Verify candidates against the matrix (removes all false positives).
  bool verify = true;
  /// Columns with fewer 1s than this are ignored (support pruning knob
  /// used in the Fig. 6(i,j) comparison).
  uint64_t min_support = 1;
  uint64_t seed = 0x5eedcafe;
  /// Groups of columns sharing one min-hash value larger than this are
  /// skipped when voting (guards against quadratic blowup on degenerate
  /// groups; counted in stats).
  size_t max_group = 4096;
  /// Observability hooks; on cancellation the miner returns an empty
  /// rule set with stats->cancelled set.
  ObserveContext observe;
};

struct MinHashStats {
  double signature_seconds = 0.0;
  double candidate_seconds = 0.0;
  double verify_seconds = 0.0;
  double total_seconds = 0.0;
  size_t candidate_pairs = 0;
  size_t false_positives_removed = 0;
  size_t skipped_groups = 0;
  /// Bytes of the signature matrix.
  size_t signature_bytes = 0;
  /// Set when the progress callback cancelled the mine (result empty).
  bool cancelled = false;
};

/// Similarity pairs with (estimated, or exact when verifying) similarity
/// >= min_similarity. With verify=true all reported pairs are true pairs
/// with exact counts; false negatives remain possible with probability
/// decreasing in num_hashes.
SimilarityRuleSet MinHashSimilarities(const BinaryMatrix& m,
                                      const MinHashOptions& options,
                                      double min_similarity,
                                      MinHashStats* stats = nullptr);

/// The per-column min-hash signature matrix (column-major:
/// signatures[c * num_hashes + t]). Exposed for tests of the estimator's
/// statistical contract.
std::vector<uint64_t> ComputeMinHashSignatures(const BinaryMatrix& m,
                                               uint32_t num_hashes,
                                               uint64_t seed);

/// Cancellable form shared by the MinHash/K-Min/LSH baselines: checks
/// `observe` once per progress interval with the given phase label and
/// stops early (setting *cancelled, if non-null) when asked.
std::vector<uint64_t> ComputeMinHashSignatures(
    const BinaryMatrix& m, uint32_t num_hashes, uint64_t seed,
    const ObserveContext& observe, const char* phase, bool* cancelled);

/// Estimated Jaccard similarity of columns (a, b) from signatures.
double EstimateSimilarity(const std::vector<uint64_t>& signatures,
                          uint32_t num_hashes, ColumnId a, ColumnId b);

}  // namespace dmc

#endif  // DMC_BASELINES_MINHASH_H_
