// Locality-Sensitive Hashing for similar pairs [Gionis, Indyk, Motwani
// VLDB'99] — the other member of the randomized family the paper's
// introduction positions DMC against.
//
// Min-hash signatures are split into `bands` bands of `rows_per_band`
// values; two columns become a candidate pair iff they agree on at least
// one entire band. A pair with similarity s collides on a band with
// probability s^rows_per_band, so the candidate probability is
// 1 - (1 - s^r)^b — a sharp sigmoid whose knee the (b, r) choice places
// at the similarity threshold. Candidates are verified exactly, so the
// output contains no false positives; pairs that never collide remain
// false negatives with probability (1 - s^r)^b.

#ifndef DMC_BASELINES_LSH_H_
#define DMC_BASELINES_LSH_H_

#include <cstdint>

#include "matrix/binary_matrix.h"
#include "observe/progress.h"
#include "rules/rule_set.h"

namespace dmc {

struct LshOptions {
  /// Number of bands (b).
  uint32_t bands = 12;
  /// Min-hash values per band (r); total signatures = bands * rows.
  uint32_t rows_per_band = 4;
  /// Columns with fewer 1s are ignored.
  uint64_t min_support = 1;
  uint64_t seed = 0x15aCafe;
  /// Bucket groups larger than this are skipped (degenerate collisions).
  size_t max_group = 4096;
  /// Observability hooks; on cancellation the miner returns an empty
  /// rule set with stats->cancelled set.
  ObserveContext observe;
};

struct LshStats {
  double signature_seconds = 0.0;
  double candidate_seconds = 0.0;
  double verify_seconds = 0.0;
  double total_seconds = 0.0;
  size_t candidate_pairs = 0;
  size_t false_positives_removed = 0;
  size_t skipped_groups = 0;
  /// Set when the progress callback cancelled the mine (result empty).
  bool cancelled = false;
};

/// Pairs with exact similarity >= min_similarity among the LSH
/// candidates. Exact counts; possible false negatives (see header).
SimilarityRuleSet LshSimilarities(const BinaryMatrix& m,
                                  const LshOptions& options,
                                  double min_similarity,
                                  LshStats* stats = nullptr);

/// P(candidate) for a pair of true similarity `s` under (bands, rows) —
/// the design curve, exposed for tests and parameter selection.
double LshCandidateProbability(double s, uint32_t bands,
                               uint32_t rows_per_band);

}  // namespace dmc

#endif  // DMC_BASELINES_LSH_H_
