// K-Min: the Min-Hash variant for implication rules used in Fig. 6(i).
//
// From min-hash signatures, estimate the Jaccard similarity s_est of a
// candidate pair, convert it to an intersection estimate
// |a∩b| ≈ s/(1+s) * (|a|+|b|), and derive an estimated confidence
// |a∩b| / |lhs|. The paper plots K-Min at the point where its false-
// negative rate is below 10% — it "could not extract complete sets of
// true rules"; this implementation reproduces that behaviour (and its
// stats expose the knobs the bench sweeps to hit the 10% target).

#ifndef DMC_BASELINES_KMIN_H_
#define DMC_BASELINES_KMIN_H_

#include <cstdint>

#include "matrix/binary_matrix.h"
#include "observe/progress.h"
#include "rules/rule_set.h"

namespace dmc {

struct KMinOptions {
  uint32_t num_hashes = 100;
  /// Pairs with estimated confidence >= min_confidence - candidate_slack
  /// are reported (no exact verification — that is the point of K-Min).
  double candidate_slack = 0.05;
  uint64_t min_support = 1;
  uint64_t seed = 0x5eedbeef;
  size_t max_group = 4096;
  /// Observability hooks; on cancellation the miner returns an empty
  /// rule set with stats->cancelled set.
  ObserveContext observe;
};

struct KMinStats {
  double total_seconds = 0.0;
  size_t candidate_pairs = 0;
  size_t rules_reported = 0;
  /// Set when the progress callback cancelled the mine (result empty).
  bool cancelled = false;
};

/// Implication rules with *estimated* confidence >= min_confidence.
/// Counts inside the returned rules are estimates; the result may contain
/// both false positives and false negatives.
ImplicationRuleSet KMinImplications(const BinaryMatrix& m,
                                    const KMinOptions& options,
                                    double min_confidence,
                                    KMinStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_BASELINES_KMIN_H_
