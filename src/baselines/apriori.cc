#include "baselines/apriori.h"

#include <vector>

#include "core/thresholds.h"
#include "observe/trace.h"
#include "rules/rule.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

// Pass-1 result: the dense renumbering of frequent columns.
struct FrequentColumns {
  std::vector<ColumnId> dense_to_col;           // dense id -> column id
  std::vector<int32_t> col_to_dense;            // column id -> dense id or -1
};

FrequentColumns SelectFrequent(const BinaryMatrix& m,
                               const AprioriOptions& options) {
  FrequentColumns f;
  f.col_to_dense.assign(m.num_columns(), -1);
  const auto& ones = m.column_ones();
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    if (ones[c] >= options.min_support && ones[c] <= options.max_support) {
      f.col_to_dense[c] = static_cast<int32_t>(f.dense_to_col.size());
      f.dense_to_col.push_back(c);
    }
  }
  return f;
}

// Triangular index of the dense pair (i, j), i < j, over `n` columns.
inline size_t TriIndex(size_t i, size_t j, size_t n) {
  return i * (2 * n - i - 1) / 2 + (j - i - 1);
}

enum class CountOutcome { kOk, kOverBudget, kCancelled };

// Counts all pairs of frequent columns.
CountOutcome CountPairs(const BinaryMatrix& m, const FrequentColumns& f,
                        const ObserveContext& obs, size_t max_counter_bytes,
                        std::vector<uint32_t>* counters,
                        AprioriStats* stats) {
  const size_t n = f.dense_to_col.size();
  const size_t num_counters = n < 2 ? 0 : n * (n - 1) / 2;
  if (num_counters * sizeof(uint32_t) > max_counter_bytes) {
    return CountOutcome::kOverBudget;
  }
  counters->assign(num_counters, 0);
  stats->counter_bytes = num_counters * sizeof(uint32_t);

  std::vector<uint32_t> dense_row;
  for (RowId r = 0; r < m.num_rows(); ++r) {
    if (!CheckProgress(obs, "pair_count", r, m.num_rows(), 0,
                       stats->counter_bytes)) {
      return CountOutcome::kCancelled;
    }
    dense_row.clear();
    for (ColumnId c : m.Row(r)) {
      if (f.col_to_dense[c] >= 0) {
        dense_row.push_back(static_cast<uint32_t>(f.col_to_dense[c]));
      }
    }
    for (size_t i = 0; i < dense_row.size(); ++i) {
      for (size_t j = i + 1; j < dense_row.size(); ++j) {
        ++(*counters)[TriIndex(dense_row[i], dense_row[j], n)];
      }
    }
  }
  return CountOutcome::kOk;
}

Status CountOutcomeError(CountOutcome outcome) {
  if (outcome == CountOutcome::kCancelled) {
    return CancelledError("a-priori cancelled in pair_count");
  }
  return ResourceExhaustedError(
      "a-priori pair counters exceed the memory budget");
}

}  // namespace

StatusOr<ImplicationRuleSet> AprioriImplications(const BinaryMatrix& m,
                                                 const AprioriOptions& options,
                                                 double min_confidence,
                                                 AprioriStats* stats,
                                                 size_t max_counter_bytes) {
  AprioriStats local;
  if (stats == nullptr) stats = &local;
  *stats = AprioriStats{};
  Stopwatch total_sw;

  Stopwatch pass1_sw;
  const FrequentColumns f = SelectFrequent(m, options);
  stats->pass1_seconds = pass1_sw.ElapsedSeconds();
  stats->frequent_columns = f.dense_to_col.size();

  Stopwatch pass2_sw;
  std::vector<uint32_t> counters;
  {
    ScopedSpan span(options.observe.trace, "apriori/pair_count",
                    options.observe.trace_lane);
    const CountOutcome outcome =
        CountPairs(m, f, options.observe, max_counter_bytes, &counters,
                   stats);
    if (outcome != CountOutcome::kOk) return CountOutcomeError(outcome);
  }

  const auto& ones = m.column_ones();
  const size_t n = f.dense_to_col.size();
  ImplicationRuleSet out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const uint32_t hits = counters[TriIndex(i, j, n)];
      if (hits == 0) continue;
      ++stats->occupied_counters;
      const ColumnId a = f.dense_to_col[i];
      const ColumnId b = f.dense_to_col[j];
      const ColumnId lhs = SparserFirst(ones[a], a, ones[b], b) ? a : b;
      const ColumnId rhs = lhs == a ? b : a;
      const uint32_t misses = ones[lhs] - hits;
      if (static_cast<int64_t>(misses) <=
          MaxMissesForConfidence(ones[lhs], min_confidence)) {
        out.Add(ImplicationRule{lhs, rhs, ones[lhs], misses});
      }
    }
  }
  stats->pass2_seconds = pass2_sw.ElapsedSeconds();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

StatusOr<SimilarityRuleSet> AprioriSimilarities(const BinaryMatrix& m,
                                                const AprioriOptions& options,
                                                double min_similarity,
                                                AprioriStats* stats,
                                                size_t max_counter_bytes) {
  AprioriStats local;
  if (stats == nullptr) stats = &local;
  *stats = AprioriStats{};
  Stopwatch total_sw;

  Stopwatch pass1_sw;
  const FrequentColumns f = SelectFrequent(m, options);
  stats->pass1_seconds = pass1_sw.ElapsedSeconds();
  stats->frequent_columns = f.dense_to_col.size();

  Stopwatch pass2_sw;
  std::vector<uint32_t> counters;
  {
    ScopedSpan span(options.observe.trace, "apriori/pair_count",
                    options.observe.trace_lane);
    const CountOutcome outcome =
        CountPairs(m, f, options.observe, max_counter_bytes, &counters,
                   stats);
    if (outcome != CountOutcome::kOk) return CountOutcomeError(outcome);
  }

  const auto& ones = m.column_ones();
  const size_t n = f.dense_to_col.size();
  SimilarityRuleSet out;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const uint32_t hits = counters[TriIndex(i, j, n)];
      if (hits == 0) continue;
      ++stats->occupied_counters;
      const ColumnId a = f.dense_to_col[i];
      const ColumnId b = f.dense_to_col[j];
      const ColumnId lo = SparserFirst(ones[a], a, ones[b], b) ? a : b;
      const ColumnId hi = lo == a ? b : a;
      if (static_cast<int64_t>(hits) >=
          MinHitsForSimilarity(ones[lo], ones[hi], min_similarity)) {
        out.Add(SimilarityPair{lo, hi, ones[lo], ones[hi], hits});
      }
    }
  }
  stats->pass2_seconds = pass2_sw.ElapsedSeconds();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

}  // namespace dmc
