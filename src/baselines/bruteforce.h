// Exact brute-force miner — the ground-truth oracle for the test suite.
//
// Counts co-occurrences of every pair that actually co-occurs (hash map
// over pairs, quadratic in row density) and applies the same integer
// thresholds as the DMC engines, so results are comparable exactly.
// Intended for small matrices; the DMC engines are the scalable path.

#ifndef DMC_BASELINES_BRUTEFORCE_H_
#define DMC_BASELINES_BRUTEFORCE_H_

#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"

namespace dmc {

/// All implication rules with confidence >= min_confidence, canonical
/// order, exact counts.
ImplicationRuleSet BruteForceImplications(const BinaryMatrix& m,
                                          double min_confidence);

/// All similarity pairs with similarity >= min_similarity, canonical
/// orientation, exact counts.
SimilarityRuleSet BruteForceSimilarities(const BinaryMatrix& m,
                                         double min_similarity);

}  // namespace dmc

#endif  // DMC_BASELINES_BRUTEFORCE_H_
