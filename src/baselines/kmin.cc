#include "baselines/kmin.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "baselines/minhash.h"
#include "core/thresholds.h"
#include "observe/trace.h"
#include "rules/rule.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

inline uint64_t PairKey(ColumnId a, ColumnId b) {
  if (a > b) std::swap(a, b);
  return (uint64_t{a} << 32) | b;
}

}  // namespace

ImplicationRuleSet KMinImplications(const BinaryMatrix& m,
                                    const KMinOptions& options,
                                    double min_confidence,
                                    KMinStats* stats) {
  KMinStats local;
  if (stats == nullptr) stats = &local;
  *stats = KMinStats{};
  Stopwatch total_sw;

  const auto& ones = m.column_ones();
  const ObserveContext& obs = options.observe;
  std::vector<uint64_t> sig;
  {
    ScopedSpan span(obs.trace, "kmin/signatures", obs.trace_lane);
    sig = ComputeMinHashSignatures(m, options.num_hashes, options.seed, obs,
                                   "kmin_signatures", &stats->cancelled);
  }
  if (stats->cancelled) {
    stats->total_seconds = total_sw.ElapsedSeconds();
    return ImplicationRuleSet{};
  }

  // Candidate pairs by shared min-hash values (same sort-based grouping
  // as MinHash).
  std::unordered_map<uint64_t, uint32_t> votes;
  votes.reserve(size_t{1} << 20);
  std::vector<std::pair<uint64_t, ColumnId>> keyed;
  keyed.reserve(m.num_columns());
  {
    ScopedSpan span(obs.trace, "kmin/votes", obs.trace_lane);
    for (uint32_t t = 0; t < options.num_hashes; ++t) {
      if (!CheckProgress(obs, "kmin_votes", t, options.num_hashes,
                         votes.size(),
                         sig.size() * sizeof(uint64_t))) {
        stats->cancelled = true;
        break;
      }
      keyed.clear();
      for (ColumnId c = 0; c < m.num_columns(); ++c) {
        if (ones[c] < options.min_support) continue;
        const uint64_t v = sig[size_t{c} * options.num_hashes + t];
        if (v == std::numeric_limits<uint64_t>::max()) continue;
        keyed.emplace_back(v, c);
      }
      std::sort(keyed.begin(), keyed.end());
      size_t i = 0;
      while (i < keyed.size()) {
        size_t j = i + 1;
        while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
        if (j - i <= options.max_group) {
          for (size_t a = i; a < j; ++a) {
            for (size_t b = a + 1; b < j; ++b) {
              ++votes[PairKey(keyed[a].second, keyed[b].second)];
            }
          }
        }
        i = j;
      }
    }
  }
  if (stats->cancelled) {
    stats->total_seconds = total_sw.ElapsedSeconds();
    return ImplicationRuleSet{};
  }
  stats->candidate_pairs = votes.size();

  // A c_lhs => c_rhs candidate with confidence p has similarity at least
  // p*|lhs| / (|lhs| + |rhs|) >= p/2; prune votes below that to keep the
  // estimation pass linear in the candidate count.
  ImplicationRuleSet out;
  for (const auto& [key, v] : votes) {
    const ColumnId a = static_cast<ColumnId>(key >> 32);
    const ColumnId b = static_cast<ColumnId>(key & 0xffffffffu);
    const double est_sim = double(v) / double(options.num_hashes);
    const double est_inter =
        est_sim / (1.0 + est_sim) * (double(ones[a]) + double(ones[b]));
    const ColumnId lhs = SparserFirst(ones[a], a, ones[b], b) ? a : b;
    const ColumnId rhs = lhs == a ? b : a;
    if (ones[lhs] == 0) continue;
    const double est_conf = est_inter / double(ones[lhs]);
    if (est_conf >= min_confidence - options.candidate_slack) {
      ImplicationRule r;
      r.lhs = lhs;
      r.rhs = rhs;
      r.lhs_ones = ones[lhs];
      const uint32_t est_hits = std::min(
          ones[lhs], static_cast<uint32_t>(est_inter + 0.5));
      r.misses = ones[lhs] - est_hits;
      out.Add(r);
    }
  }
  stats->rules_reported = out.size();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

}  // namespace dmc
