#include "baselines/dhp.h"

#include <unordered_map>
#include <vector>

#include "core/thresholds.h"
#include "observe/trace.h"
#include "rules/rule.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

inline uint64_t PairKey(ColumnId a, ColumnId b) {
  if (a > b) std::swap(a, b);
  return (uint64_t{a} << 32) | b;
}

inline size_t Bucket(uint64_t key, size_t num_buckets) {
  return Mix64(key) % num_buckets;
}

}  // namespace

ImplicationRuleSet DhpImplications(const BinaryMatrix& m,
                                   const DhpOptions& options,
                                   double min_confidence, DhpStats* stats) {
  DhpStats local;
  if (stats == nullptr) stats = &local;
  *stats = DhpStats{};
  Stopwatch total_sw;

  const auto& ones = m.column_ones();
  const ObserveContext& obs = options.observe;
  const size_t bucket_bytes = options.num_buckets * sizeof(uint32_t);

  // Pass 1: singleton supports come from the matrix; hash every pair of
  // every row into the bucket filter.
  Stopwatch pass1_sw;
  std::vector<uint32_t> buckets(options.num_buckets, 0);
  {
    ScopedSpan span(obs.trace, "dhp/pass1", obs.trace_lane);
    for (RowId r = 0; r < m.num_rows(); ++r) {
      if (!CheckProgress(obs, "dhp_pass1", r, m.num_rows(), 0,
                         bucket_bytes)) {
        stats->cancelled = true;
        stats->pass1_seconds = pass1_sw.ElapsedSeconds();
        stats->total_seconds = total_sw.ElapsedSeconds();
        return ImplicationRuleSet{};
      }
      const auto row = m.Row(r);
      for (size_t i = 0; i < row.size(); ++i) {
        for (size_t j = i + 1; j < row.size(); ++j) {
          ++buckets[Bucket(PairKey(row[i], row[j]), options.num_buckets)];
        }
      }
    }
  }
  std::vector<uint8_t> frequent(m.num_columns(), 0);
  for (ColumnId c = 0; c < m.num_columns(); ++c) {
    frequent[c] =
        ones[c] >= options.min_support && ones[c] <= options.max_support;
    stats->frequent_columns += frequent[c];
  }
  stats->pass1_seconds = pass1_sw.ElapsedSeconds();

  // Pass 2: exact counters only for pairs of frequent columns whose
  // bucket passed the support filter.
  Stopwatch pass2_sw;
  std::unordered_map<uint64_t, uint32_t> exact;
  std::vector<ColumnId> filtered;
  {
    ScopedSpan span(obs.trace, "dhp/pass2", obs.trace_lane);
    for (RowId r = 0; r < m.num_rows(); ++r) {
      if (!CheckProgress(obs, "dhp_pass2", r, m.num_rows(), exact.size(),
                         bucket_bytes)) {
        stats->cancelled = true;
        stats->pass2_seconds = pass2_sw.ElapsedSeconds();
        stats->total_seconds = total_sw.ElapsedSeconds();
        return ImplicationRuleSet{};
      }
      filtered.clear();
      for (ColumnId c : m.Row(r)) {
        if (frequent[c]) filtered.push_back(c);
      }
      for (size_t i = 0; i < filtered.size(); ++i) {
        for (size_t j = i + 1; j < filtered.size(); ++j) {
          const uint64_t key = PairKey(filtered[i], filtered[j]);
          if (buckets[Bucket(key, options.num_buckets)] >=
              options.min_support) {
            ++exact[key];
          }
        }
      }
    }
  }
  stats->exact_counters = exact.size();
  stats->counter_bytes = options.num_buckets * sizeof(uint32_t) +
                         exact.size() * (sizeof(uint64_t) + sizeof(uint32_t));

  ImplicationRuleSet out;
  for (const auto& [key, hits] : exact) {
    if (hits < options.min_support) continue;  // pair-level support prune
    const ColumnId a = static_cast<ColumnId>(key >> 32);
    const ColumnId b = static_cast<ColumnId>(key & 0xffffffffu);
    const ColumnId lhs = SparserFirst(ones[a], a, ones[b], b) ? a : b;
    const ColumnId rhs = lhs == a ? b : a;
    const uint32_t misses = ones[lhs] - hits;
    if (static_cast<int64_t>(misses) <=
        MaxMissesForConfidence(ones[lhs], min_confidence)) {
      out.Add(ImplicationRule{lhs, rhs, ones[lhs], misses});
    }
  }
  stats->pass2_seconds = pass2_sw.ElapsedSeconds();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

}  // namespace dmc
