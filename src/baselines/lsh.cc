#include "baselines/lsh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <vector>

#include "baselines/minhash.h"
#include "core/thresholds.h"
#include "observe/trace.h"
#include "rules/verifier.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace dmc {

double LshCandidateProbability(double s, uint32_t bands,
                               uint32_t rows_per_band) {
  return 1.0 - std::pow(1.0 - std::pow(s, rows_per_band), bands);
}

SimilarityRuleSet LshSimilarities(const BinaryMatrix& m,
                                  const LshOptions& options,
                                  double min_similarity, LshStats* stats) {
  LshStats local;
  if (stats == nullptr) stats = &local;
  *stats = LshStats{};
  Stopwatch total_sw;

  const auto& ones = m.column_ones();
  const ObserveContext& obs = options.observe;
  const uint32_t k = options.bands * options.rows_per_band;

  Stopwatch sig_sw;
  std::vector<uint64_t> sig;
  {
    ScopedSpan span(obs.trace, "lsh/signatures", obs.trace_lane);
    sig = ComputeMinHashSignatures(m, k, options.seed, obs,
                                   "lsh_signatures", &stats->cancelled);
  }
  stats->signature_seconds = sig_sw.ElapsedSeconds();
  if (stats->cancelled) {
    stats->total_seconds = total_sw.ElapsedSeconds();
    return SimilarityRuleSet{};
  }

  // Candidate generation: per band, hash the band slice of each column
  // and sort (bucket_key, column) to find collision groups without a
  // hash map.
  Stopwatch cand_sw;
  std::unordered_set<uint64_t> candidate_keys;
  std::vector<std::pair<uint64_t, ColumnId>> keyed;
  keyed.reserve(m.num_columns());
  {
    ScopedSpan span(obs.trace, "lsh/candidates", obs.trace_lane);
    for (uint32_t band = 0; band < options.bands; ++band) {
      if (!CheckProgress(obs, "lsh_bands", band, options.bands,
                         candidate_keys.size(),
                         sig.size() * sizeof(uint64_t))) {
        stats->cancelled = true;
        break;
      }
      keyed.clear();
      for (ColumnId c = 0; c < m.num_columns(); ++c) {
        if (ones[c] < options.min_support) continue;
        uint64_t h = 0x8c2f1b3d5a7e9406ULL ^ band;
        bool empty = false;
        for (uint32_t r = 0; r < options.rows_per_band; ++r) {
          const uint64_t v =
              sig[size_t{c} * k + size_t{band} * options.rows_per_band + r];
          if (v == std::numeric_limits<uint64_t>::max()) empty = true;
          h = Mix64(h ^ v) + 0x9e3779b97f4a7c15ULL;
        }
        if (!empty) keyed.emplace_back(h, c);
      }
      std::sort(keyed.begin(), keyed.end());
      size_t i = 0;
      while (i < keyed.size()) {
        size_t j = i + 1;
        while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
        const size_t group = j - i;
        if (group > 1) {
          if (group > options.max_group) {
            ++stats->skipped_groups;
          } else {
            for (size_t a = i; a < j; ++a) {
              for (size_t b = a + 1; b < j; ++b) {
                const ColumnId ca =
                    std::min(keyed[a].second, keyed[b].second);
                const ColumnId cb =
                    std::max(keyed[a].second, keyed[b].second);
                candidate_keys.insert((uint64_t{ca} << 32) | cb);
              }
            }
          }
        }
        i = j;
      }
    }
  }
  if (stats->cancelled) {
    stats->candidate_seconds = cand_sw.ElapsedSeconds();
    stats->total_seconds = total_sw.ElapsedSeconds();
    return SimilarityRuleSet{};
  }
  stats->candidate_pairs = candidate_keys.size();
  stats->candidate_seconds = cand_sw.ElapsedSeconds();

  // Exact verification.
  Stopwatch verify_sw;
  ScopedSpan verify_span(obs.trace, "lsh/verify", obs.trace_lane);
  SimilarityRuleSet out;
  RuleVerifier verifier(m);
  for (uint64_t key : candidate_keys) {
    const ColumnId a = static_cast<ColumnId>(key >> 32);
    const ColumnId b = static_cast<ColumnId>(key & 0xffffffffu);
    const SimilarityPair p = verifier.MakeSimilarity(a, b);
    if (static_cast<int64_t>(p.intersection) >=
        MinHitsForSimilarity(p.ones_a, p.ones_b, min_similarity)) {
      out.Add(p);
    } else {
      ++stats->false_positives_removed;
    }
  }
  stats->verify_seconds = verify_sw.ElapsedSeconds();
  out.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return out;
}

}  // namespace dmc
