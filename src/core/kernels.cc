#include "core/kernels.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define DMC_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace dmc {

namespace {

bool DetectAvx2() {
#ifdef DMC_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Scalar reference: linear two-pointer walk — the same comparison
// sequence the pre-arena merge performed, so kScalar is a faithful
// baseline for the SIMD variants.
void MarkHitsScalar(const ColumnId* list, size_t n, const ColumnId* row,
                    size_t m, uint8_t* hit, size_t i, size_t j) {
  for (; j < n; ++j) {
    const ColumnId v = list[j];
    while (i < m && row[i] < v) ++i;
    if (i < m && row[i] == v) {
      hit[j] = 1;
      ++i;
    } else if (i >= m) {
      return;  // hit[] was pre-zeroed; the rest are misses
    }
  }
}

size_t IntersectCountScalar(const ColumnId* a, size_t na, const ColumnId* b,
                            size_t nb) {
  size_t count = 0, i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#ifdef DMC_KERNELS_X86

// Both AVX2 variants process the longer side eight ids per load and
// broadcast-compare each id of the shorter side against the block; a
// block is abandoned as soon as the probe id exceeds its maximum. With
// strictly ascending inputs at most one lane can match, so the movemask
// pinpoints the hit directly.

__attribute__((target("avx2"))) void MarkHitsAvx2(const ColumnId* list,
                                                  size_t n,
                                                  const ColumnId* row,
                                                  size_t m, uint8_t* hit) {
  size_t i = 0, j = 0;
  if (n >= m) {
    // Block the list, probe with row ids.
    while (j + 8 <= n && i < m) {
      const __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(list + j));
      const ColumnId block_max = list[j + 7];
      while (i < m && row[i] <= block_max) {
        const __m256i probe =
            _mm256_set1_epi32(static_cast<int32_t>(row[i]));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
        if (mask != 0) {
          hit[j + static_cast<size_t>(__builtin_ctz(
                      static_cast<unsigned>(mask)))] = 1;
        }
        ++i;
      }
      j += 8;
    }
  } else {
    // Block the row, probe with list ids.
    while (i + 8 <= m && j < n) {
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
      const ColumnId block_max = row[i + 7];
      while (j < n && list[j] <= block_max) {
        const __m256i probe =
            _mm256_set1_epi32(static_cast<int32_t>(list[j]));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
        if (mask != 0) hit[j] = 1;
        ++j;
      }
      i += 8;
    }
  }
  MarkHitsScalar(list, n, row, m, hit, i, j);
}

__attribute__((target("avx2"))) size_t IntersectCountAvx2(
    const ColumnId* a, size_t na, const ColumnId* b, size_t nb) {
  // Normalize so `a` is the longer (blocked) side.
  if (na < nb) {
    const ColumnId* t = a;
    a = b;
    b = t;
    const size_t tn = na;
    na = nb;
    nb = tn;
  }
  size_t count = 0, i = 0, j = 0;
  while (i + 8 <= na && j < nb) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const ColumnId block_max = a[i + 7];
    while (j < nb && b[j] <= block_max) {
      const __m256i probe = _mm256_set1_epi32(static_cast<int32_t>(b[j]));
      const int mask = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
      count += mask != 0 ? 1 : 0;
      ++j;
    }
    i += 8;
  }
  return count + IntersectCountScalar(a + i, na - i, b + j, nb - j);
}

#endif  // DMC_KERNELS_X86

}  // namespace

bool SimdKernelAvailable() {
  static const bool available = DetectAvx2();
  return available;
}

MergeKernel ResolveKernel(MergeKernel requested) {
  switch (requested) {
    case MergeKernel::kAuto:
      return SimdKernelAvailable() ? MergeKernel::kSimd
                                   : MergeKernel::kScalar;
    case MergeKernel::kSimd:
      return SimdKernelAvailable() ? MergeKernel::kSimd
                                   : MergeKernel::kScalar;
    case MergeKernel::kLegacy:
    case MergeKernel::kScalar:
      return requested;
  }
  return MergeKernel::kScalar;
}

const char* KernelName(MergeKernel k) {
  switch (k) {
    case MergeKernel::kAuto:
      return "auto";
    case MergeKernel::kLegacy:
      return "legacy";
    case MergeKernel::kScalar:
      return "scalar";
    case MergeKernel::kSimd:
      return "simd";
  }
  return "unknown";
}

namespace kernels {

void MarkHits(const ColumnId* list, size_t n, const ColumnId* row, size_t m,
              uint8_t* hit, MergeKernel kernel) {
  std::memset(hit, 0, n);
#ifdef DMC_KERNELS_X86
  if (kernel == MergeKernel::kSimd && SimdKernelAvailable()) {
    MarkHitsAvx2(list, n, row, m, hit);
    return;
  }
#else
  (void)kernel;
#endif
  MarkHitsScalar(list, n, row, m, hit, 0, 0);
}

size_t IntersectCount(const ColumnId* a, size_t na, const ColumnId* b,
                      size_t nb, MergeKernel kernel) {
#ifdef DMC_KERNELS_X86
  if (kernel == MergeKernel::kSimd && SimdKernelAvailable()) {
    return IntersectCountAvx2(a, na, b, nb);
  }
#else
  (void)kernel;
#endif
  return IntersectCountScalar(a, na, b, nb);
}

}  // namespace kernels

}  // namespace dmc
