#include "core/kernels.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define DMC_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace dmc {

namespace {

bool DetectAvx2() {
#ifdef DMC_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Scalar reference: linear two-pointer walk — the same comparison
// sequence the pre-arena merge performed, so kScalar is a faithful
// baseline for the SIMD variants.
void MarkHitsScalar(const ColumnId* list, size_t n, const ColumnId* row,
                    size_t m, uint8_t* hit, size_t i, size_t j) {
  for (; j < n; ++j) {
    const ColumnId v = list[j];
    while (i < m && row[i] < v) ++i;
    if (i < m && row[i] == v) {
      hit[j] = 1;
      ++i;
    } else if (i >= m) {
      return;  // hit[] was pre-zeroed; the rest are misses
    }
  }
}

size_t IntersectCountScalar(const ColumnId* a, size_t na, const ColumnId* b,
                            size_t nb) {
  size_t count = 0, i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

#ifdef DMC_KERNELS_X86

// Both AVX2 variants process the longer side eight ids per load and
// broadcast-compare each id of the shorter side against the block; a
// block is abandoned as soon as the probe id exceeds its maximum. With
// strictly ascending inputs at most one lane can match, so the movemask
// pinpoints the hit directly.

__attribute__((target("avx2"))) void MarkHitsAvx2(const ColumnId* list,
                                                  size_t n,
                                                  const ColumnId* row,
                                                  size_t m, uint8_t* hit) {
  size_t i = 0, j = 0;
  if (n >= m) {
    // Block the list, probe with row ids.
    while (j + 8 <= n && i < m) {
      const __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(list + j));
      const ColumnId block_max = list[j + 7];
      while (i < m && row[i] <= block_max) {
        const __m256i probe =
            _mm256_set1_epi32(static_cast<int32_t>(row[i]));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
        if (mask != 0) {
          hit[j + static_cast<size_t>(__builtin_ctz(
                      static_cast<unsigned>(mask)))] = 1;
        }
        ++i;
      }
      j += 8;
    }
  } else {
    // Block the row, probe with list ids.
    while (i + 8 <= m && j < n) {
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
      const ColumnId block_max = row[i + 7];
      while (j < n && list[j] <= block_max) {
        const __m256i probe =
            _mm256_set1_epi32(static_cast<int32_t>(list[j]));
        const int mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
        if (mask != 0) hit[j] = 1;
        ++j;
      }
      i += 8;
    }
  }
  MarkHitsScalar(list, n, row, m, hit, i, j);
}

__attribute__((target("avx2"))) size_t IntersectCountAvx2(
    const ColumnId* a, size_t na, const ColumnId* b, size_t nb) {
  // Normalize so `a` is the longer (blocked) side.
  if (na < nb) {
    const ColumnId* t = a;
    a = b;
    b = t;
    const size_t tn = na;
    na = nb;
    nb = tn;
  }
  size_t count = 0, i = 0, j = 0;
  while (i + 8 <= na && j < nb) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const ColumnId block_max = a[i + 7];
    while (j < nb && b[j] <= block_max) {
      const __m256i probe = _mm256_set1_epi32(static_cast<int32_t>(b[j]));
      const int mask = _mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, probe)));
      count += mask != 0 ? 1 : 0;
      ++j;
    }
    i += 8;
  }
  return count + IntersectCountScalar(a + i, na - i, b + j, nb - j);
}

#endif  // DMC_KERNELS_X86

inline void SidecarClear(uint64_t* sc, ColumnId c) {
  sc[c >> 6] &= ~(uint64_t{1} << (c & 63));
}

// Portable bodies for the vector sweeps: the exact scalar predicates,
// plus the sidecar/dead-hit maintenance contract. They are both the
// non-x86 fallback and the tail loop of the AVX2 variants (start at
// entry j, write head w).
size_t ImpSweepPortable(ColumnId* cand, uint32_t* miss, size_t n,
                        const uint8_t* mask, uint32_t budget,
                        uint64_t* sidecar, size_t j, size_t w) {
  for (; j < n; ++j) {
    const ColumnId ck = cand[j];
    const uint32_t hit = mask[ck] != 0 ? 1u : 0u;
    const uint32_t new_miss = miss[j] + 1u - hit;
    if (hit == 0 && new_miss > budget) {
      SidecarClear(sidecar, ck);
      continue;
    }
    cand[w] = ck;
    miss[w] = new_miss;
    ++w;
  }
  return w;
}

size_t SimSweepPortable(ColumnId* cand, uint32_t* miss, size_t n,
                        const uint8_t* mask, const kernels::SimSweepParams& p,
                        uint64_t* sidecar, std::vector<ColumnId>* dead_hits,
                        size_t j, size_t w) {
  for (; j < n; ++j) {
    const ColumnId ck = cand[j];
    const int64_t hit = mask[ck] != 0 ? 1 : 0;
    const uint32_t old_miss = miss[j];
    const int64_t rem_k = p.rem[ck];
    const int64_t arg = static_cast<int64_t>(p.rem_j) + old_miss -
                        std::min<int64_t>(p.rem_j - 1 + hit, rem_k);
    const bool keep =
        p.one_plus_s * static_cast<double>(arg) <=
        static_cast<double>(p.ones_j) - p.s_ones[ck] + p.budget_eps;
    if (!keep) {
      if (hit != 0) {
        dead_hits->push_back(ck);
      } else {
        SidecarClear(sidecar, ck);
      }
      continue;
    }
    cand[w] = ck;
    miss[w] = static_cast<uint32_t>(old_miss + 1 - hit);
    ++w;
  }
  return w;
}

#ifdef DMC_KERNELS_X86

// 8-lane left-pack permutation table: kCompressLut.perm[mask] moves the
// lanes whose mask bit is set to the front, in order. 8 KiB, hot in L1
// for the whole scan.
struct CompressLut {
  alignas(32) uint32_t perm[256][8];
};

constexpr CompressLut MakeCompressLut() {
  CompressLut lut{};
  for (int m = 0; m < 256; ++m) {
    int w = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) lut.perm[m][w++] = static_cast<uint32_t>(b);
    }
    for (; w < 8; ++w) lut.perm[m][w] = 0;
  }
  return lut;
}

constexpr CompressLut kCompressLut = MakeCompressLut();

// All-lanes masked gathers. GCC-12's unmasked gather intrinsics expand
// through _mm256_undefined_*() and trip -Wmaybe-uninitialized under
// -Werror; the masked forms take an initialized source and compile to
// the same vgatherdps/vgatherdpd with an all-ones mask.
__attribute__((target("avx2"))) inline __m256i GatherEpi32(
    const int* base, __m256i ids, const int scale) {
  // NOLINTNEXTLINE: scale must be a literal-like constant expression.
  return scale == 1
             ? _mm256_mask_i32gather_epi32(_mm256_setzero_si256(), base, ids,
                                           _mm256_set1_epi32(-1), 1)
             : _mm256_mask_i32gather_epi32(_mm256_setzero_si256(), base, ids,
                                           _mm256_set1_epi32(-1), 4);
}

__attribute__((target("avx2"))) inline __m256d GatherPd(const double* base,
                                                        __m128i ids) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, ids,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

__attribute__((target("avx2,popcnt"))) size_t ImpSweepAvx2(
    ColumnId* cand, uint32_t* miss, size_t n, const uint8_t* mask,
    uint32_t budget, uint64_t* sidecar) {
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vbyte = _mm256_set1_epi32(0xFF);
  const __m256i vbud = _mm256_set1_epi32(static_cast<int32_t>(budget));
  alignas(32) uint32_t ids_buf[8];
  size_t j = 0, w = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + j));
    // The mask byte per candidate (32-bit gather; BeginRow pads the mask
    // so the 3 spill bytes of the last column are readable).
    const __m256i hit = _mm256_and_si256(
        GatherEpi32(reinterpret_cast<const int*>(mask), ids, 1), vbyte);
    const __m256i oldm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(miss + j));
    const __m256i newm =
        _mm256_sub_epi32(_mm256_add_epi32(oldm, vone), hit);
    // keep = hit | (new_miss <= budget), unsigned compare via min.
    const __m256i hit_cmp = _mm256_cmpeq_epi32(hit, vone);
    const __m256i le =
        _mm256_cmpeq_epi32(_mm256_min_epu32(newm, vbud), newm);
    const __m256i keep = _mm256_or_si256(hit_cmp, le);
    const unsigned keep_mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(keep)));
    // All-keep blocks with no compaction pending write back what is
    // already there: an all-hit block leaves misses unchanged too, so
    // both stores can be skipped; otherwise only the miss lane moved.
    if (keep_mask == 0xFFu && w == j) {
      const unsigned hit_mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(hit_cmp)));
      if (hit_mask != 0xFFu) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(miss + w), newm);
      }
      w += 8;
      continue;
    }
    unsigned dead = ~keep_mask & 0xFFu;
    if (dead != 0) {
      // Grab the ids before the compress-store below may overwrite them
      // (w can be within 8 of j). Implication deaths are always
      // miss-deaths, so presence bits are cleared immediately.
      _mm256_store_si256(reinterpret_cast<__m256i*>(ids_buf), ids);
      do {
        const unsigned l = static_cast<unsigned>(__builtin_ctz(dead));
        dead &= dead - 1;
        SidecarClear(sidecar, ids_buf[l]);
      } while (dead != 0);
    }
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompressLut.perm[keep_mask]));
    // Unconditional 8-lane stores are safe: w <= j, so [w, w+8) stays
    // inside the list, and the lanes past the survivors are rewritten by
    // the next step or cut off by SetSize.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand + w),
                        _mm256_permutevar8x32_epi32(ids, perm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(miss + w),
                        _mm256_permutevar8x32_epi32(newm, perm));
    w += static_cast<size_t>(__builtin_popcount(keep_mask));
  }
  return ImpSweepPortable(cand, miss, n, mask, budget, sidecar, j, w);
}

__attribute__((target("avx2,popcnt"))) size_t SimSweepAvx2(
    ColumnId* cand, uint32_t* miss, size_t n, const uint8_t* mask,
    const kernels::SimSweepParams& p, uint64_t* sidecar,
    std::vector<ColumnId>* dead_hits) {
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vbyte = _mm256_set1_epi32(0xFF);
  const __m256i vrem_j = _mm256_set1_epi32(p.rem_j);
  const __m256i vrem_j_m1 = _mm256_set1_epi32(p.rem_j - 1);
  const __m256d vops = _mm256_set1_pd(p.one_plus_s);
  const __m256d va = _mm256_set1_pd(static_cast<double>(p.ones_j));
  const __m256d veps = _mm256_set1_pd(p.budget_eps);
  alignas(32) uint32_t ids_buf[8];
  size_t j = 0, w = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i ids =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + j));
    const __m256i hit = _mm256_and_si256(
        GatherEpi32(reinterpret_cast<const int*>(mask), ids, 1), vbyte);
    const __m256i rem_k =
        GatherEpi32(reinterpret_cast<const int*>(p.rem), ids, 4);
    const __m256i oldm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(miss + j));
    // arg = rem_j + old_miss - min(rem_j - 1 + hit, rem_k); every term
    // fits int32 under kVectorSweepMaxRows.
    const __m256i arg = _mm256_sub_epi32(
        _mm256_add_epi32(vrem_j, oldm),
        _mm256_min_epi32(_mm256_add_epi32(vrem_j_m1, hit), rem_k));
    // WithinPairBudget with the scalar's exact operand values and
    // operation order: (1+s)*arg <= (ones_j - s_ones[ck]) + eps. s_ones
    // is gathered, not recomputed, so no rounding can diverge.
    const __m128i ids_lo = _mm256_castsi256_si128(ids);
    const __m128i ids_hi = _mm256_extracti128_si256(ids, 1);
    const __m256d sones_lo = GatherPd(p.s_ones, ids_lo);
    const __m256d sones_hi = GatherPd(p.s_ones, ids_hi);
    const __m256d lhs_lo =
        _mm256_mul_pd(vops, _mm256_cvtepi32_pd(_mm256_castsi256_si128(arg)));
    const __m256d lhs_hi = _mm256_mul_pd(
        vops, _mm256_cvtepi32_pd(_mm256_extracti128_si256(arg, 1)));
    const __m256d rhs_lo =
        _mm256_add_pd(_mm256_sub_pd(va, sones_lo), veps);
    const __m256d rhs_hi =
        _mm256_add_pd(_mm256_sub_pd(va, sones_hi), veps);
    const unsigned keep_mask =
        static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_cmp_pd(lhs_lo, rhs_lo, _CMP_LE_OQ))) |
        (static_cast<unsigned>(
             _mm256_movemask_pd(_mm256_cmp_pd(lhs_hi, rhs_hi, _CMP_LE_OQ)))
         << 4);
    // Same store-skip as the implication sweep: all-keep with no
    // compaction pending rewrites identical candidate ids, and all-hit
    // additionally leaves the misses unchanged.
    if (keep_mask == 0xFFu && w == j) {
      const unsigned hm = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(hit,
                                                                    vone))));
      if (hm != 0xFFu) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(miss + w),
            _mm256_sub_epi32(_mm256_add_epi32(oldm, vone), hit));
      }
      w += 8;
      continue;
    }
    unsigned dead = ~keep_mask & 0xFFu;
    if (dead != 0) {
      const unsigned hit_mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(hit,
                                                                    vone))));
      _mm256_store_si256(reinterpret_cast<__m256i*>(ids_buf), ids);
      do {
        const unsigned l = static_cast<unsigned>(__builtin_ctz(dead));
        dead &= dead - 1;
        if ((hit_mask >> l) & 1u) {
          dead_hits->push_back(ids_buf[l]);
        } else {
          SidecarClear(sidecar, ids_buf[l]);
        }
      } while (dead != 0);
    }
    const __m256i newm =
        _mm256_sub_epi32(_mm256_add_epi32(oldm, vone), hit);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompressLut.perm[keep_mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand + w),
                        _mm256_permutevar8x32_epi32(ids, perm));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(miss + w),
                        _mm256_permutevar8x32_epi32(newm, perm));
    w += static_cast<size_t>(__builtin_popcount(keep_mask));
  }
  return SimSweepPortable(cand, miss, n, mask, p, sidecar, dead_hits, j, w);
}

#endif  // DMC_KERNELS_X86

}  // namespace

bool SimdKernelAvailable() {
  static const bool available = DetectAvx2();
  return available;
}

MergeKernel ResolveKernel(MergeKernel requested) {
  switch (requested) {
    case MergeKernel::kAuto:
      return SimdKernelAvailable() ? MergeKernel::kSimd
                                   : MergeKernel::kScalar;
    case MergeKernel::kSimd:
      return SimdKernelAvailable() ? MergeKernel::kSimd
                                   : MergeKernel::kScalar;
    case MergeKernel::kLegacy:
    case MergeKernel::kScalar:
      return requested;
  }
  return MergeKernel::kScalar;
}

const char* KernelName(MergeKernel k) {
  switch (k) {
    case MergeKernel::kAuto:
      return "auto";
    case MergeKernel::kLegacy:
      return "legacy";
    case MergeKernel::kScalar:
      return "scalar";
    case MergeKernel::kSimd:
      return "simd";
  }
  return "unknown";
}

namespace kernels {

bool VectorSweepAvailable() {
#ifdef DMC_KERNELS_X86
  return SimdKernelAvailable();
#else
  return false;
#endif
}

size_t ImpVectorSweep(ColumnId* cand, uint32_t* miss, size_t n,
                      const uint8_t* row_mask, uint32_t budget,
                      uint64_t* sidecar) {
#ifdef DMC_KERNELS_X86
  if (SimdKernelAvailable()) {
    return ImpSweepAvx2(cand, miss, n, row_mask, budget, sidecar);
  }
#endif
  return ImpSweepPortable(cand, miss, n, row_mask, budget, sidecar, 0, 0);
}

size_t SimVectorSweep(ColumnId* cand, uint32_t* miss, size_t n,
                      const uint8_t* row_mask, const SimSweepParams& p,
                      uint64_t* sidecar, std::vector<ColumnId>* dead_hits) {
#ifdef DMC_KERNELS_X86
  if (SimdKernelAvailable()) {
    return SimSweepAvx2(cand, miss, n, row_mask, p, sidecar, dead_hits);
  }
#endif
  return SimSweepPortable(cand, miss, n, row_mask, p, sidecar, dead_hits, 0,
                          0);
}

void MarkHits(const ColumnId* list, size_t n, const ColumnId* row, size_t m,
              uint8_t* hit, MergeKernel kernel) {
  std::memset(hit, 0, n);
#ifdef DMC_KERNELS_X86
  if (kernel == MergeKernel::kSimd && SimdKernelAvailable()) {
    MarkHitsAvx2(list, n, row, m, hit);
    return;
  }
#else
  (void)kernel;
#endif
  MarkHitsScalar(list, n, row, m, hit, 0, 0);
}

size_t IntersectCount(const ColumnId* a, size_t na, const ColumnId* b,
                      size_t nb, MergeKernel kernel) {
#ifdef DMC_KERNELS_X86
  if (kernel == MergeKernel::kSimd && SimdKernelAvailable()) {
    return IntersectCountAvx2(a, na, b, nb);
  }
#else
  (void)kernel;
#endif
  return IntersectCountScalar(a, na, b, nb);
}

}  // namespace kernels

}  // namespace dmc
