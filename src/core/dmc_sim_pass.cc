#include "core/dmc_sim_pass.h"

#include <algorithm>
#include <utility>

#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "core/thresholds.h"
#include "observe/progress.h"
#include "observe/trace.h"
#include "postings/posting_container.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

class SimilarityScan {
 public:
  SimilarityScan(const SimilarityPassInput& in, SimilarityRuleSet* out)
      : in_(in),
        out_(out),
        m_(*in.matrix),
        ones_(m_.column_ones()),
        active_(*in.active),
        policy_(*in.policy),
        s_(in.min_similarity),
        one_plus_s_(1.0 + in.min_similarity),
        budget_eps_((1.0 + in.min_similarity) * kThresholdEpsilon),
        kernel_(ResolveKernel(policy_.kernel)),
        cnt_(m_.num_columns(), 0),
        table_(m_.num_columns(), in.bytes_per_entry, in.tracker) {
    all_active_ = std::all_of(active_.begin(), active_.end(),
                              [](uint8_t a) { return a != 0; });
    col_budget_.resize(m_.num_columns());
    s_ones_.resize(m_.num_columns());
    for (ColumnId c = 0; c < m_.num_columns(); ++c) {
      col_budget_[c] = ColumnMaxMissesForSimilarity(ones_[c], s_);
      s_ones_[c] = s_ * static_cast<double>(ones_[c]);
    }
    // The vector sweep hard-codes the default §5.2 maximum-hits
    // predicates; the ablation modes keep the generic kSimd path.
    use_vector_ = kernel_ == MergeKernel::kSimd &&
                  kernels::VectorSweepAvailable() &&
                  policy_.max_hits_pruning &&
                  m_.num_columns() <= kernels::kVectorSweepMaxColumns &&
                  m_.num_rows() < kernels::kVectorSweepMaxRows;
    if (use_vector_) {
      table_.EnableSidecars();
      // rem_[c] = ones[c] - cnt[c], kept current in step 3(b) so the
      // sweep gathers one array per candidate.
      rem_.assign(ones_.begin(), ones_.end());
    }
  }

  SimilarityPassResult Run() {
    SimilarityPassResult result;
    Stopwatch base_sw;
    const size_t n = in_.order.size();
    const ObserveContext& obs = policy_.observe;
    const bool check_progress = obs.has_progress();
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    size_t idx = 0;
    bool to_bitmap = false;
    for (; idx < n; ++idx) {
      if (check_progress && idx % interval == 0 &&
          !ReportProgress(obs, idx, n)) {
        result.cancelled = true;
        result.rows_processed = idx;
        result.base_seconds = base_sw.ElapsedSeconds();
        result.peak_entries = table_.peak_entries();
        return result;
      }
      if (policy_.bitmap_fallback &&
          n - idx <= policy_.bitmap_max_remaining_rows &&
          table_.bytes() >= policy_.memory_threshold_bytes) {
        to_bitmap = true;
        break;
      }
      const auto row = FilteredRow(in_.order[idx]);
      if (kernel_ == MergeKernel::kSimd) {
        scratch_.BeginRow(row, m_.num_columns());
      }
      for (ColumnId cj : row) {
        if (!LhsOk(cj)) continue;
        if (static_cast<int64_t>(cnt_[cj]) <= col_budget_[cj]) {
          MergeWithAdd(cj, row);
        } else if (table_.HasList(cj)) {
          MergeMissOnly(cj, row);
        }
      }
      for (ColumnId cj : row) {
        ++cnt_[cj];
        if (use_vector_) --rem_[cj];
        if (cnt_[cj] == ones_[cj] && table_.HasList(cj)) FlushColumn(cj);
      }
      RecordHistory();
    }
    result.base_seconds = base_sw.ElapsedSeconds();
    result.rows_processed = n;

    if (to_bitmap) {
      Stopwatch bitmap_sw;
      {
        ScopedSpan span(obs.trace, std::string(in_.phase) + "/dmc_bitmap",
                        obs.trace_lane);
        RunBitmapPhases(idx);
      }
      result.bitmap_used = true;
      result.bitmap_rows = n - idx;
      result.bitmap_seconds = bitmap_sw.ElapsedSeconds();
    }
    result.peak_entries = table_.peak_entries();
    if (check_progress) {
      // Final update so watchers see 100%; too late to cancel.
      (void)ReportProgress(obs, n, n);
    }
    return result;
  }

 private:
  // Whether this pass owns column `c` as the list-keeping (sparser) side.
  bool LhsOk(ColumnId c) const {
    return in_.lhs_shard == nullptr || (*in_.lhs_shard)[c] != 0;
  }

  bool Qualifies(ColumnId ck, ColumnId cj) const {
    return ones_[ck] > ones_[cj] ||
           (ones_[ck] == ones_[cj] && ck > cj);
  }

  int64_t PairBudget(ColumnId ci, ColumnId ck) const {
    return MaxMissesForSimilarity(ones_[ci], ones_[ck], s_);
  }

  // mis <= MaxMissesForSimilarity(a, ones(ck), s_) in multiply form:
  //   mis <= (a - s*b)/(1+s) + eps  <=>  (1+s)*mis <= a - s*b + (1+s)*eps,
  // with s*b = s_ones_[ck] precomputed per scan. This hoists the
  // per-entry floating divide (and floor) out of the merge predicates and
  // leaves one int-to-double conversion per test; the kThresholdEpsilon
  // guard band (thresholds.h) is orders of magnitude wider than the
  // rounding difference between the forms, so they decide identically.
  bool WithinPairBudget(uint32_t a, ColumnId ck, int64_t mis) const {
    return one_plus_s_ * static_cast<double>(mis) <=
           static_cast<double>(a) - s_ones_[ck] + budget_eps_;
  }

  std::span<const ColumnId> FilteredRow(RowId r) {
    const auto row = m_.Row(r);
    if (all_active_) return row;
    scratch_row_.clear();
    for (ColumnId c : row) {
      if (active_[c]) scratch_row_.push_back(c);
    }
    return scratch_row_;
  }

  // §5.2 maximum-hits bound, evaluated while processing a row where cj
  // and ck are BOTH present (or ck is being added). Counters are pre-row,
  // so the remaining-1s terms still include the current row — matching
  // Example 5.1's arithmetic exactly.
  bool SurvivesMaxHitsOnHit(ColumnId cj, ColumnId ck, uint32_t miss) const {
    const int64_t rem_j = static_cast<int64_t>(ones_[cj]) - cnt_[cj];
    const int64_t rem_k = static_cast<int64_t>(ones_[ck]) - cnt_[ck];
    const int64_t hits_so_far = static_cast<int64_t>(cnt_[cj]) - miss;
    const int64_t best_hits = hits_so_far + std::min(rem_j, rem_k);
    // best_hits >= MinHitsForSimilarity(a, b, s_) <=> a - best_hits is
    // within the pair budget. Since best_hits <= a - miss, the floor
    // a - best_hits is >= miss, so this single test also subsumes the
    // plain pair-budget test of the current miss count.
    return WithinPairBudget(ones_[cj], ck,
                            static_cast<int64_t>(ones_[cj]) - best_hits);
  }

  // Same bound on a row where cj is present but ck is NOT (`new_miss`
  // already includes this row's miss). The current row cannot be a future
  // hit: it consumes one of cj's remaining 1s and none of ck's.
  bool SurvivesMaxHitsOnMiss(ColumnId cj, ColumnId ck,
                             uint32_t new_miss) const {
    const int64_t rem_j = static_cast<int64_t>(ones_[cj]) - cnt_[cj] - 1;
    const int64_t rem_k = static_cast<int64_t>(ones_[ck]) - cnt_[ck];
    const int64_t hits_so_far =
        static_cast<int64_t>(cnt_[cj]) - (static_cast<int64_t>(new_miss) - 1);
    const int64_t best_hits = hits_so_far + std::min(rem_j, rem_k);
    // The floor a - best_hits is >= new_miss here (rem_j excludes the
    // current row), so this subsumes the pair-budget test of new_miss.
    return WithinPairBudget(ones_[cj], ck,
                            static_cast<int64_t>(ones_[cj]) - best_hits);
  }

  void MergeWithAdd(ColumnId cj, std::span<const ColumnId> row) {
    const uint32_t base_miss = cnt_[cj];
    if (use_vector_) {
      VectorAddMerge(cj, row, base_miss);
      return;
    }
    // §5.1 column-density pruning on joiners: a negative budget means the
    // ratio ones(cj)/ones(ck) is below s and the pair can never qualify;
    // a budget below cnt(cj) means it is dead on arrival. With the
    // pruning disabled (ablation) such pairs are still added and left to
    // the regular miss counting + flush guard, costing memory but never
    // changing the output.
    const auto accept_new = [this, cj, base_miss](ColumnId ck) {
      if (!Qualifies(ck, cj)) return false;
      // The max-hits test subsumes the density test (its miss floor is
      // >= base_miss), so each branch is a single budget comparison.
      if (policy_.max_hits_pruning) {
        return SurvivesMaxHitsOnHit(cj, ck, base_miss);
      }
      return !policy_.column_density_pruning ||
             WithinPairBudget(ones_[cj], ck, base_miss);
    };
    const auto keep_on_hit = [this, cj](ColumnId ck, uint32_t miss) {
      return !policy_.max_hits_pruning || SurvivesMaxHitsOnHit(cj, ck, miss);
    };
    const auto keep_on_miss = [this, cj](ColumnId ck, uint32_t new_miss) {
      if (policy_.max_hits_pruning) {
        return SurvivesMaxHitsOnMiss(cj, ck, new_miss);
      }
      return WithinPairBudget(ones_[cj], ck, new_miss);
    };
    if (kernel_ == MergeKernel::kLegacy) {
      LegacyAddMerge(table_, cj, row, base_miss, scratch_, accept_new,
                     keep_on_hit, keep_on_miss);
    } else {
      InPlaceAddMerge(table_, cj, row, base_miss, scratch_, kernel_,
                      accept_new, keep_on_hit, keep_on_miss);
    }
  }

  void MergeMissOnly(ColumnId cj, std::span<const ColumnId> row) {
    if (use_vector_) {
      const MissCounterTable::MutableList list = table_.Mutable(cj);
      if (list.size == 0) return;
      uint64_t* sc = table_.Sidecar(cj);
      scratch_.dead_hits.clear();
      const size_t w = kernels::SimVectorSweep(
          list.cand, list.miss, list.size, scratch_.row_mask.data(),
          MakeSweepParams(cj), sc, &scratch_.dead_hits);
      // No joiner walk here, so dying hits can be cleared right away.
      for (const ColumnId d : scratch_.dead_hits) {
        MissCounterTable::SidecarClearBit(sc, d);
      }
      if (w != list.size) table_.SetSize(cj, w);
      return;
    }
    const auto keep_on_hit = [this, cj](ColumnId ck, uint32_t miss) {
      return !policy_.max_hits_pruning || SurvivesMaxHitsOnHit(cj, ck, miss);
    };
    const auto keep_on_miss = [this, cj](ColumnId ck, uint32_t new_miss) {
      if (policy_.max_hits_pruning) {
        return SurvivesMaxHitsOnMiss(cj, ck, new_miss);
      }
      return WithinPairBudget(ones_[cj], ck, new_miss);
    };
    if (kernel_ == MergeKernel::kLegacy) {
      LegacyMissMerge(table_, cj, row, scratch_, keep_on_hit, keep_on_miss);
    } else {
      InPlaceMissMerge(table_, cj, row, scratch_, kernel_, keep_on_hit,
                       keep_on_miss);
    }
  }

  kernels::SimSweepParams MakeSweepParams(ColumnId cj) const {
    kernels::SimSweepParams p;
    p.rem = rem_.data();
    p.s_ones = s_ones_.data();
    p.ones_j = static_cast<int32_t>(ones_[cj]);
    p.rem_j = rem_[cj];
    p.one_plus_s = one_plus_s_;
    p.budget_eps = budget_eps_;
    return p;
  }

  // MergeWithAdd on the block-typed vector path (see dmc_base.cc for the
  // sidecar-vs-mask rationale). Unlike implication, a similarity entry
  // can die on a hit; its presence bit must survive the joiner row-walk
  // — it was in the list on this row and must not rejoin — and is
  // cleared just after.
  void VectorAddMerge(ColumnId cj, std::span<const ColumnId> row,
                      uint32_t base_miss) {
    if (!table_.HasList(cj)) {
      scratch_.fresh.clear();
      for (const ColumnId ck : row) {
        if (ck != cj && Qualifies(ck, cj) &&
            SurvivesMaxHitsOnHit(cj, ck, base_miss)) {
          scratch_.fresh.push_back(ck);
        }
      }
      if (scratch_.fresh.empty()) return;
      table_.Create(cj);
      const MissCounterTable::MutableList list =
          table_.Reserve(cj, scratch_.fresh.size());
      uint64_t* sc = table_.Sidecar(cj);
      for (size_t k = 0; k < scratch_.fresh.size(); ++k) {
        list.cand[k] = scratch_.fresh[k];
        list.miss[k] = base_miss;
        MissCounterTable::SidecarSetBit(sc, scratch_.fresh[k]);
      }
      table_.SetSize(cj, scratch_.fresh.size());
      return;
    }
    const MissCounterTable::MutableList list = table_.Mutable(cj);
    uint64_t* sc = table_.Sidecar(cj);
    scratch_.dead_hits.clear();
    const size_t w = kernels::SimVectorSweep(
        list.cand, list.miss, list.size, scratch_.row_mask.data(),
        MakeSweepParams(cj), sc, &scratch_.dead_hits);
    // Joiners word-wise: row columns whose presence bit is clear. The
    // dead-hit bits are still set here, so a candidate that died on this
    // row's hit cannot rejoin.
    scratch_.fresh.clear();
    const uint64_t* rb = scratch_.row_bits.data();
    const size_t words = scratch_.row_bits.size();
    for (size_t wd = 0; wd < words; ++wd) {
      uint64_t pending = rb[wd] & ~sc[wd];
      while (pending != 0) {
        const ColumnId cr = static_cast<ColumnId>(
            (wd << 6) + static_cast<unsigned>(__builtin_ctzll(pending)));
        pending &= pending - 1;
        if (cr != cj && Qualifies(cr, cj) &&
            SurvivesMaxHitsOnHit(cj, cr, base_miss)) {
          scratch_.fresh.push_back(cr);
        }
      }
    }
    for (const ColumnId d : scratch_.dead_hits) {
      MissCounterTable::SidecarClearBit(sc, d);
    }
    if (scratch_.fresh.empty()) {
      if (w != list.size) table_.SetSize(cj, w);
      return;
    }
    for (const ColumnId f : scratch_.fresh) {
      MissCounterTable::SidecarSetBit(sc, f);
    }
    MergeJoinersFromBack(table_, cj, w, scratch_.fresh, base_miss);
  }

  void FlushColumn(ColumnId cj) {
    const auto list = table_.List(cj);
    for (size_t j = 0; j < list.size; ++j) {
      // Guard for the ablation mode with density pruning off: a pair with
      // a negative budget may linger in the list if it never missed.
      if (static_cast<int64_t>(list.miss[j]) >
          PairBudget(cj, list.cand[j])) {
        continue;
      }
      EmitPair(cj, list.cand[j], ones_[cj] - list.miss[j]);
    }
    table_.Release(cj);
  }

  void EmitPair(ColumnId ci, ColumnId ck, uint32_t intersection) {
    const bool identical =
        ones_[ci] == ones_[ck] && intersection == ones_[ci];
    if (!in_.emit_identical && identical) return;
    out_->Add(SimilarityPair{ci, ck, ones_[ci], ones_[ck], intersection});
  }

  // Delivers one progress sample; returns false when the callback asks
  // to cancel.
  bool ReportProgress(const ObserveContext& obs, size_t idx, size_t n) {
    ProgressUpdate update;
    update.phase = in_.phase;
    update.rows_processed = idx;
    update.total_rows = n;
    update.live_candidates = table_.total_entries();
    update.counter_bytes = table_.bytes();
    update.shard = obs.shard;
    return obs.progress(update);
  }

  void RecordHistory() {
    if (in_.memory_history != nullptr) {
      // Per-row *peak*, not end-of-row value: candidate lists can grow
      // and then shrink within one row, and the exported invariant
      // max(memory_history) == peak_counter_bytes must hold exactly.
      in_.memory_history->push_back(in_.tracker->TakeIntervalPeak());
    }
    if (in_.candidate_history != nullptr) {
      // Same contract for candidates: the intra-row peak, so
      // max(candidate_history) == peak_candidates holds exactly.
      in_.candidate_history->push_back(table_.TakeEntriesIntervalPeak());
    }
  }

  void RunBitmapPhases(size_t start) {
    const size_t n = in_.order.size();
    const size_t tn = n - start;
    std::vector<std::vector<ColumnId>> tail;
    tail.reserve(tn);
    std::vector<int32_t> bm_index(m_.num_columns(), -1);
    std::vector<PostingContainer> bitmaps;
    for (size_t t = 0; t < tn; ++t) {
      const auto row = FilteredRow(in_.order[start + t]);
      tail.emplace_back(row.begin(), row.end());
      for (ColumnId c : row) {
        if (bm_index[c] < 0) {
          bm_index[c] = static_cast<int32_t>(bitmaps.size());
          bitmaps.emplace_back();
        }
        bitmaps[bm_index[c]].Append(static_cast<uint32_t>(t));
      }
    }
    for (PostingContainer& p : bitmaps) p.Optimize();

    const ColumnId num_cols = m_.num_columns();
    // Phase 1: columns past their column-level budget — finish the listed
    // candidates exactly.
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (!table_.HasList(c)) continue;
      if (static_cast<int64_t>(cnt_[c]) <= col_budget_[c]) continue;
      const PostingContainer* bj =
          bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
      const auto list = table_.List(c);
      for (size_t e = 0; e < list.size; ++e) {
        size_t extra = 0;
        if (bj != nullptr) {
          extra = bm_index[list.cand[e]] >= 0
                      ? bj->AndNotCount(bitmaps[bm_index[list.cand[e]]])
                      : bj->cardinality();
        }
        const int64_t total = static_cast<int64_t>(list.miss[e]) + extra;
        if (total <= PairBudget(c, list.cand[e])) {
          EmitPair(c, list.cand[e], ones_[c] - static_cast<uint32_t>(total));
        }
      }
      table_.Release(c);
    }

    // Identical-column fast path (Algorithm 5.1 step 2): at minsim = 1
    // every phase-2 column has cnt = 0 (its column budget is 0), so its
    // support lies entirely in the tail and identical pairs are exactly
    // the equal-bitmap groups — "extract those column pairs that have the
    // same bitmap instead of counting", as the paper prescribes. Grouping
    // is sort-based ((hash, column) pairs), keeping the hot files free of
    // hash maps.
    if (s_ == 1.0) {
      std::vector<std::pair<uint64_t, ColumnId>> hashed;
      for (ColumnId c = 0; c < num_cols; ++c) {
        if (!active_[c] || ones_[c] == 0) continue;
        if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
        if (table_.HasList(c)) table_.Release(c);
        if (cnt_[c] != 0 || bm_index[c] < 0) continue;
        hashed.emplace_back(bitmaps[bm_index[c]].Hash(), c);
      }
      std::sort(hashed.begin(), hashed.end());
      for (size_t lo = 0; lo < hashed.size();) {
        size_t hi = lo + 1;
        while (hi < hashed.size() && hashed[hi].first == hashed[lo].first) {
          ++hi;
        }
        for (size_t i = lo; i < hi; ++i) {
          for (size_t j = i + 1; j < hi; ++j) {
            const ColumnId ci = hashed[i].second;
            const ColumnId cj = hashed[j].second;
            // The canonical antecedent of an identical pair is the lower
            // id; in sharded runs only its owner emits the pair. Hash
            // collisions are possible, so confirm exact equality.
            if (!LhsOk(std::min(ci, cj))) continue;
            if (bitmaps[bm_index[ci]] == bitmaps[bm_index[cj]]) {
              EmitPair(ci, cj, ones_[ci]);
            }
          }
        }
        lo = hi;
      }
      return;
    }

    // Phase 2: columns that may still gain candidates — count hits over
    // the tail, seeded with the exact head hits of listed candidates.
    // Dense per-column hit counts with a touched list for O(touched)
    // reset; see dmc_base.cc for the rationale.
    std::vector<uint32_t> hits(num_cols, 0);
    std::vector<uint8_t> seen(num_cols, 0);
    std::vector<ColumnId> touched;
    const auto touch = [&](ColumnId ck) {
      if (!seen[ck]) {
        seen[ck] = 1;
        touched.push_back(ck);
      }
    };
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (!active_[c] || ones_[c] == 0 || !LhsOk(c)) continue;
      if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
      touched.clear();
      if (table_.HasList(c)) {
        const auto list = table_.List(c);
        for (size_t e = 0; e < list.size; ++e) {
          touch(list.cand[e]);
          hits[list.cand[e]] = cnt_[c] - list.miss[e];
        }
      }
      if (bm_index[c] >= 0) {
        bitmaps[bm_index[c]].ForEach([&](uint32_t t) {
          for (ColumnId ck : tail[t]) {
            if (ck != c) {
              touch(ck);
              ++hits[ck];
            }
          }
        });
      }
      for (ColumnId ck : touched) {
        const uint32_t h = hits[ck];
        seen[ck] = 0;
        hits[ck] = 0;
        if (!Qualifies(ck, c)) continue;
        if (static_cast<int64_t>(h) >=
            MinHitsForSimilarity(ones_[c], ones_[ck], s_)) {
          EmitPair(c, ck, h);
        }
      }
      if (table_.HasList(c)) table_.Release(c);
    }
  }

  const SimilarityPassInput& in_;
  SimilarityRuleSet* out_;
  const BinaryMatrix& m_;
  const std::vector<uint32_t>& ones_;
  const std::vector<uint8_t>& active_;
  const DmcPolicy& policy_;
  const double s_;
  const double one_plus_s_;
  const double budget_eps_;
  const MergeKernel kernel_;
  bool all_active_ = false;
  bool use_vector_ = false;
  std::vector<uint32_t> cnt_;
  std::vector<int64_t> col_budget_;
  std::vector<double> s_ones_;  // s_ * ones_[c], for WithinPairBudget
  std::vector<int32_t> rem_;    // ones_[c] - cnt_[c] (vector path only)
  MissCounterTable table_;
  std::vector<ColumnId> scratch_row_;
  MergeScratch scratch_;
};

}  // namespace

SimilarityPassResult RunSimilarityPass(const SimilarityPassInput& input,
                                       SimilarityRuleSet* out) {
  DMC_CHECK(input.matrix != nullptr);
  DMC_CHECK(input.active != nullptr);
  DMC_CHECK(input.policy != nullptr);
  DMC_CHECK(input.tracker != nullptr);
  DMC_CHECK(out != nullptr);
  DMC_CHECK_GT(input.min_similarity, 0.0);
  DMC_CHECK_LE(input.min_similarity, 1.0);
  DMC_CHECK_EQ(input.active->size(), input.matrix->num_columns());
  SimilarityScan scan(input, out);
  return scan.Run();
}

}  // namespace dmc
