// Streaming DMC for similarity pairs — the DMC-sim counterpart of
// streaming_imp.h, with pair-specific budgets, column-density pruning and
// maximum-hits pruning. Pinned to the batch engine by the test suite.

#ifndef DMC_CORE_STREAMING_SIM_H_
#define DMC_CORE_STREAMING_SIM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "core/thresholds.h"
#include "matrix/binary_matrix.h"
#include "observe/trace.h"
#include "rules/rule_set.h"
#include "util/memory_tracker.h"
#include "util/statusor.h"

namespace dmc {

/// One streamed similarity pass (identical-column phase when
/// min_similarity == 1, or the sub-100% phase).
class StreamingSimilarityPass {
 public:
  struct Config {
    ColumnId num_columns = 0;
    std::vector<uint32_t> ones;
    uint64_t total_rows = 0;
    double min_similarity = 1.0;
    /// Active columns; empty = all active.
    std::vector<uint8_t> active;
    /// Antecedent shard (see StreamingImplicationPass::Config): only
    /// marked columns own candidate lists; an identical pair belongs to
    /// the shard of its lower-id column.
    std::vector<uint8_t> lhs_shard;
    bool emit_identical = true;
    size_t bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    DmcPolicy policy;
    /// Phase label for progress updates ("hundred_phase", "sub_phase").
    const char* phase = "pass";
  };

  explicit StreamingSimilarityPass(Config config);

  StreamingSimilarityPass(const StreamingSimilarityPass&) = delete;
  StreamingSimilarityPass& operator=(const StreamingSimilarityPass&) =
      delete;

  void ProcessRow(std::span<const ColumnId> row);
  uint64_t rows_seen() const { return rows_seen_; }
  bool bitmap_mode() const { return bitmap_mode_; }
  /// Whether the progress callback asked to cancel; see
  /// StreamingImplicationPass::cancelled().
  bool cancelled() const { return cancelled_; }
  /// Whether an injected fault hit the pass (failpoint site
  /// "streaming.sim.row"); see StreamingImplicationPass::faulted().
  bool faulted() const { return !fault_.ok(); }
  size_t counter_bytes() const { return table_.bytes(); }
  size_t peak_counter_bytes() const { return tracker_.peak_bytes(); }

  [[nodiscard]] StatusOr<SimilarityRuleSet> Finish();

 private:
  bool LhsOk(ColumnId c) const {
    return config_.lhs_shard.empty() || config_.lhs_shard[c] != 0;
  }
  bool ActiveOk(ColumnId c) const {
    return config_.active.empty() || config_.active[c] != 0;
  }
  bool Qualifies(ColumnId ck, ColumnId cj) const;
  int64_t PairBudget(ColumnId ci, ColumnId ck) const;
  bool WithinPairBudget(uint32_t a, ColumnId ck, int64_t mis) const;
  bool SurvivesMaxHitsOnHit(ColumnId cj, ColumnId ck, uint32_t miss) const;
  bool SurvivesMaxHitsOnMiss(ColumnId cj, ColumnId ck,
                             uint32_t new_miss) const;
  std::span<const ColumnId> FilteredRow(std::span<const ColumnId> row);
  void MergeWithAdd(ColumnId cj, std::span<const ColumnId> row);
  void MergeMissOnly(ColumnId cj, std::span<const ColumnId> row);
  void FlushColumn(ColumnId cj);
  void EmitPair(ColumnId ci, ColumnId ck, uint32_t intersection);
  void RunBitmapPhases();

  Config config_;
  bool all_active_ = true;
  double one_plus_s_ = 2.0;
  double budget_eps_ = 0.0;
  MergeKernel kernel_;
  MemoryTracker tracker_;
  MissCounterTable table_;
  std::vector<uint32_t> cnt_;
  std::vector<int64_t> col_budget_;
  std::vector<double> s_ones_;  // min_similarity * ones[c]
  uint64_t rows_seen_ = 0;
  bool bitmap_mode_ = false;
  bool finished_ = false;
  bool cancelled_ = false;
  Status fault_ = Status::OK();
  std::vector<std::vector<ColumnId>> tail_;
  SimilarityRuleSet out_;
  std::vector<ColumnId> scratch_row_;
  MergeScratch scratch_;
};

/// Streams the full DMC-sim pipeline (identical phase + cutoff +
/// sub-100% phase); `replay(sink)` is invoked once per phase and must
/// deliver the same rows in the same order each time. `lhs_shard`
/// (optional) restricts antecedents as in StreamImplications.
template <typename Replay>
[[nodiscard]] StatusOr<SimilarityRuleSet> StreamSimilarities(
    ColumnId num_columns, const std::vector<uint32_t>& ones,
    uint64_t total_rows, const SimilarityMiningOptions& options,
    Replay&& replay, const std::vector<uint8_t>* lhs_shard = nullptr) {
  if (!(options.min_similarity > 0.0) || options.min_similarity > 1.0) {
    return InvalidArgumentError("min_similarity must be in (0, 1]");
  }
  const double minsim = options.min_similarity;
  const bool run_hundred =
      options.policy.hundred_percent_phase || minsim == 1.0;
  SimilarityRuleSet out;

  if (run_hundred) {
    StreamingSimilarityPass::Config cfg;
    cfg.num_columns = num_columns;
    cfg.ones = ones;
    cfg.total_rows = total_rows;
    cfg.min_similarity = 1.0;
    cfg.active.resize(num_columns);
    for (ColumnId c = 0; c < num_columns; ++c) cfg.active[c] = ones[c] > 0;
    cfg.emit_identical = true;
    cfg.bytes_per_entry = MissCounterTable::kEntryBytesIdOnly;
    if (lhs_shard != nullptr) cfg.lhs_shard = *lhs_shard;
    cfg.policy = options.policy;
    cfg.phase = "hundred_phase";
    StreamingSimilarityPass pass(std::move(cfg));
    ScopedSpan span(options.policy.observe.trace, "stream_sim/hundred_phase",
                    options.policy.observe.trace_lane);
    replay([&pass](std::span<const ColumnId> row) { pass.ProcessRow(row); });
    auto pairs = pass.Finish();
    if (!pairs.ok()) return pairs.status();
    for (const auto& p : *pairs) out.Add(p);
  }

  if (minsim < 1.0) {
    StreamingSimilarityPass::Config cfg;
    cfg.num_columns = num_columns;
    cfg.ones = ones;
    cfg.total_rows = total_rows;
    cfg.min_similarity = minsim;
    cfg.active.resize(num_columns);
    for (ColumnId c = 0; c < num_columns; ++c) {
      cfg.active[c] =
          ones[c] > 0 &&
          (!run_hundred || ColumnSurvivesSimilarityCutoff(ones[c], minsim));
    }
    cfg.emit_identical = !run_hundred;
    cfg.bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    if (lhs_shard != nullptr) cfg.lhs_shard = *lhs_shard;
    cfg.policy = options.policy;
    cfg.phase = "sub_phase";
    StreamingSimilarityPass pass(std::move(cfg));
    ScopedSpan span(options.policy.observe.trace, "stream_sim/sub_phase",
                    options.policy.observe.trace_lane);
    replay([&pass](std::span<const ColumnId> row) { pass.ProcessRow(row); });
    auto pairs = pass.Finish();
    if (!pairs.ok()) return pairs.status();
    for (const auto& p : *pairs) out.Add(p);
  }

  out.Canonicalize();
  return out;
}

}  // namespace dmc

#endif  // DMC_CORE_STREAMING_SIM_H_
