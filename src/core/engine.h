// Umbrella header for the DMC mining engines — the library's primary
// public API.
//
//   #include "core/engine.h"
//
//   dmc::ImplicationMiningOptions opts;
//   opts.min_confidence = 0.9;
//   auto rules = dmc::MineImplications(matrix, opts);
//   if (rules.ok()) rules->Print(std::cout);

#ifndef DMC_CORE_ENGINE_H_
#define DMC_CORE_ENGINE_H_

#include "core/dmc_imp.h"      // IWYU pragma: export
#include "core/dmc_options.h"  // IWYU pragma: export
#include "core/dmc_sim.h"      // IWYU pragma: export
#include "core/mining_stats.h" // IWYU pragma: export
#include "core/parallel_dmc.h" // IWYU pragma: export
#include "core/thresholds.h"   // IWYU pragma: export

#endif  // DMC_CORE_ENGINE_H_
