// Checkpoint/resume for the external (disk-based) miner.
//
// Pass 1 of the external pipeline (ones(c) + density-bucket partitioning)
// is a full scan of the input; on big inputs it dominates wall-clock when
// a run dies midway. A checkpoint persists everything pass 1 produced —
// the first-pass statistics and the bucket inventory — so a restarted run
// can validate it and jump straight to pass 2 over the surviving bucket
// files.
//
// On-disk format (little-endian):
//
//   offset 0   8 bytes   magic "DMCCKPT\n"
//          8   u32       version (1)
//         12   u64       input file byte size     \ fingerprint of the
//         20   u64       input file FNV-1a hash   / original input
//         28   u8        bucketed flag
//         29   u32       num_columns
//         33   u64       num_rows
//         41   u32 * num_columns   column_ones
//        ...   u32       bucket count
//        ...   per bucket: i32 id, u64 rows, u64 bytes
//        ...   u64       FNV-1a checksum of every byte above
//        ...   4 bytes   end magic "DMCE"
//
// The reader treats any structural problem or checksum mismatch as
// kDataLoss; ValidateCheckpoint additionally re-fingerprints the input
// and stats the bucket files so a stale or torn checkpoint degrades to a
// fresh run instead of silently mining the wrong data.

#ifndef DMC_CORE_CHECKPOINT_H_
#define DMC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/binary_matrix.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dmc {

/// Cheap identity of a file: byte size + FNV-1a of the raw content.
struct FileFingerprint {
  uint64_t bytes = 0;
  uint64_t hash = 0;

  friend bool operator==(const FileFingerprint& a, const FileFingerprint& b) {
    return a.bytes == b.bytes && a.hash == b.hash;
  }
};

/// Streams `path` once and returns its fingerprint.
[[nodiscard]] StatusOr<FileFingerprint> FingerprintFile(
    const std::string& path);

/// Everything pass 1 of the external miner produces.
struct ExternalCheckpoint {
  FileFingerprint input;
  /// Whether the rows were partitioned into density buckets (false =
  /// identity order, pass 2 streams the original file).
  bool bucketed = false;
  ColumnId num_columns = 0;
  uint64_t num_rows = 0;
  std::vector<uint32_t> column_ones;

  struct Bucket {
    int32_t id = 0;
    uint64_t rows = 0;
    /// Byte size of the bucket file at checkpoint time; used to detect
    /// torn or tampered bucket files before resuming.
    uint64_t bytes = 0;
  };
  std::vector<Bucket> buckets;
};

/// Path of density bucket `bucket` under `work_dir` (shared between the
/// external miner and checkpoint validation).
std::string ExternalBucketPath(const std::string& work_dir, int bucket);

/// Atomically writes `cp` to `path` (temp + fsync + rename).
[[nodiscard]] Status WriteCheckpointFile(const ExternalCheckpoint& cp,
                                         const std::string& path);

/// Parses a checkpoint file. Corruption, truncation or a checksum
/// mismatch yields kDataLoss; a missing file yields kIOError.
[[nodiscard]] StatusOr<ExternalCheckpoint> ReadCheckpointFile(
    const std::string& path);

/// Confirms `cp` still describes reality: the input at `input_path`
/// fingerprints identically and every bucket file under `work_dir`
/// exists with its recorded byte size. Returns kFailedPrecondition when
/// the input changed and kDataLoss when a bucket file is missing or the
/// wrong size.
[[nodiscard]] Status ValidateCheckpoint(const ExternalCheckpoint& cp,
                                        const std::string& input_path,
                                        const std::string& work_dir);

}  // namespace dmc

#endif  // DMC_CORE_CHECKPOINT_H_
