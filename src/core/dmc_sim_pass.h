// The DMC-sim data scan (Algorithm 5.1 steps 2/4) and its DMC-bitmap
// fallback.
//
// Differences from the implication pass:
//  * the miss budget is per *pair*, not per column: with a = ones(c_i) <=
//    b = ones(c_j), Sim >= s iff mis(c_i against c_j) <= (a - s*b)/(1+s),
//    so the one-sided miss count kept on the sparser column determines
//    the similarity exactly;
//  * column-density pruning (§5.1) skips pairs with a/b < s outright;
//  * maximum-hits pruning (§5.2) deletes a candidate as soon as its best
//    achievable similarity falls below the threshold, even on hit rows.

#ifndef DMC_CORE_DMC_SIM_PASS_H_
#define DMC_CORE_DMC_SIM_PASS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/memory_tracker.h"

namespace dmc {

/// Inputs of one similarity pass over the data.
struct SimilarityPassInput {
  const BinaryMatrix* matrix = nullptr;
  std::span<const RowId> order;
  /// minsim in (0, 1]. Running with 1.0 is exactly the identical-column
  /// phase (step 2 of Algorithm 5.1).
  double min_similarity = 1.0;
  const std::vector<uint8_t>* active = nullptr;
  /// Optional shard over the sparser (list-owning) column; see
  /// ImplicationPassInput::lhs_shard.
  const std::vector<uint8_t>* lhs_shard = nullptr;
  /// When false, identical pairs (equal 1-counts, zero misses) are
  /// suppressed — they were produced by the 100%-similarity phase.
  bool emit_identical = true;
  size_t bytes_per_entry = 8;
  const DmcPolicy* policy = nullptr;
  MemoryTracker* tracker = nullptr;
  std::vector<size_t>* memory_history = nullptr;
  std::vector<size_t>* candidate_history = nullptr;
  /// Phase label for progress updates and trace spans.
  const char* phase = "pass";
};

struct SimilarityPassResult {
  bool bitmap_used = false;
  size_t bitmap_rows = 0;
  double base_seconds = 0.0;
  double bitmap_seconds = 0.0;
  size_t peak_entries = 0;
  /// Rows of the order this pass consumed before finishing or being
  /// cancelled.
  size_t rows_processed = 0;
  /// The progress callback asked to stop; `out` holds partial results
  /// the caller must discard.
  bool cancelled = false;
};

/// Runs the scan, appending every pair with similarity >= min_similarity
/// (exact intersection counts) to `out`.
SimilarityPassResult RunSimilarityPass(const SimilarityPassInput& input,
                                       SimilarityRuleSet* out);

}  // namespace dmc

#endif  // DMC_CORE_DMC_SIM_PASS_H_
