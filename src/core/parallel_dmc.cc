#include "core/parallel_dmc.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "util/stopwatch.h"

namespace dmc {

std::vector<std::vector<uint8_t>> MakeColumnShards(
    const std::vector<uint32_t>& column_ones, uint32_t num_shards) {
  std::vector<std::vector<uint8_t>> shards(
      num_shards, std::vector<uint8_t>(column_ones.size(), 0));
  // Greedy balanced partition by 1-count (longest-processing-time rule).
  std::vector<ColumnId> order(column_ones.size());
  std::iota(order.begin(), order.end(), ColumnId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&column_ones](ColumnId a, ColumnId b) {
                     return column_ones[a] > column_ones[b];
                   });
  std::vector<uint64_t> load(num_shards, 0);
  for (ColumnId c : order) {
    const uint32_t target = static_cast<uint32_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shards[target][c] = 1;
    load[target] += column_ones[c] + 1;
  }
  return shards;
}

namespace {

uint32_t ResolveThreads(const ParallelOptions& parallel) {
  if (parallel.num_threads > 0) return parallel.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

// Runs `mine(shard, &stats)` for every shard on its own thread and
// merges rule sets + aggregate stats. MineShard must be callable as
// StatusOr<RuleSetT>(const std::vector<uint8_t>&, MiningStats*).
template <typename RuleSetT, typename MineShard>
StatusOr<RuleSetT> RunSharded(const std::vector<uint32_t>& column_ones,
                              uint32_t num_threads, MineShard mine,
                              ParallelMiningStats* stats) {
  ParallelMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMiningStats{};
  Stopwatch total_sw;

  const auto shards = MakeColumnShards(column_ones, num_threads);
  stats->shards = num_threads;

  std::vector<StatusOr<RuleSetT>> results(num_threads,
                                          StatusOr<RuleSetT>(RuleSetT{}));
  std::vector<MiningStats> shard_stats(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      results[t] = mine(shards[t], &shard_stats[t]);
    });
  }
  for (auto& w : workers) w.join();

  RuleSetT merged;
  for (uint32_t t = 0; t < num_threads; ++t) {
    if (!results[t].ok()) return results[t].status();
    for (const auto& rule : *results[t]) merged.Add(rule);
    stats->max_shard_seconds =
        std::max(stats->max_shard_seconds, shard_stats[t].total_seconds);
    stats->sum_shard_seconds += shard_stats[t].total_seconds;
    stats->sum_peak_counter_bytes += shard_stats[t].peak_counter_bytes;
    stats->max_peak_counter_bytes = std::max(
        stats->max_peak_counter_bytes, shard_stats[t].peak_counter_bytes);
  }
  merged.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  return merged;
}

}  // namespace

StatusOr<ImplicationRuleSet> MineImplicationsParallel(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineImplications(matrix, options, &serial_stats);
    if (stats != nullptr) {
      *stats = ParallelMiningStats{};
      stats->shards = 1;
      stats->total_seconds = serial_stats.total_seconds;
      stats->max_shard_seconds = serial_stats.total_seconds;
      stats->sum_shard_seconds = serial_stats.total_seconds;
      stats->sum_peak_counter_bytes = serial_stats.peak_counter_bytes;
      stats->max_peak_counter_bytes = serial_stats.peak_counter_bytes;
    }
    return out;
  }
  return RunSharded<ImplicationRuleSet>(
      matrix.column_ones(), threads,
      [&matrix, &options](const std::vector<uint8_t>& shard,
                          MiningStats* shard_stats) {
        return MineImplicationsSharded(matrix, options, shard, shard_stats);
      },
      stats);
}

StatusOr<SimilarityRuleSet> MineSimilaritiesParallel(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineSimilarities(matrix, options, &serial_stats);
    if (stats != nullptr) {
      *stats = ParallelMiningStats{};
      stats->shards = 1;
      stats->total_seconds = serial_stats.total_seconds;
      stats->max_shard_seconds = serial_stats.total_seconds;
      stats->sum_shard_seconds = serial_stats.total_seconds;
      stats->sum_peak_counter_bytes = serial_stats.peak_counter_bytes;
      stats->max_peak_counter_bytes = serial_stats.peak_counter_bytes;
    }
    return out;
  }
  return RunSharded<SimilarityRuleSet>(
      matrix.column_ones(), threads,
      [&matrix, &options](const std::vector<uint8_t>& shard,
                          MiningStats* shard_stats) {
        return MineSimilaritiesSharded(matrix, options, shard, shard_stats);
      },
      stats);
}

}  // namespace dmc
