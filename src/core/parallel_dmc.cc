#include "core/parallel_dmc.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "observe/progress.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/stopwatch.h"

namespace dmc {

std::vector<std::vector<uint8_t>> MakeColumnShards(
    const std::vector<uint32_t>& column_ones, uint32_t num_shards) {
  std::vector<std::vector<uint8_t>> shards(
      num_shards, std::vector<uint8_t>(column_ones.size(), 0));
  // Greedy balanced partition by 1-count (longest-processing-time rule).
  std::vector<ColumnId> order(column_ones.size());
  std::iota(order.begin(), order.end(), ColumnId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&column_ones](ColumnId a, ColumnId b) {
                     return column_ones[a] > column_ones[b];
                   });
  std::vector<uint64_t> load(num_shards, 0);
  for (ColumnId c : order) {
    const uint32_t target = static_cast<uint32_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shards[target][c] = 1;
    load[target] += column_ones[c] + 1;
  }
  return shards;
}

namespace {

uint32_t ResolveThreads(const ParallelOptions& parallel) {
  if (parallel.num_threads > 0) return parallel.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

// Per-shard observability context: spans land on lane t+1, progress
// updates are stamped with the shard index, and one shard's cancel
// request (or the user callback returning false) stops every shard at
// its next progress interval via the shared flag.
ObserveContext ShardContext(const ObserveContext& base, int shard,
                            const std::shared_ptr<std::atomic<bool>>& cancel) {
  ObserveContext ctx = base;
  ctx.shard = shard;
  ctx.trace_lane = shard + 1;
  if (base.has_progress()) {
    ProgressCallback inner = base.progress;
    ctx.progress = [inner, cancel](const ProgressUpdate& update) {
      if (cancel->load(std::memory_order_relaxed)) return false;
      if (inner(update)) return true;
      cancel->store(true, std::memory_order_relaxed);
      return false;
    };
  }
  return ctx;
}

// Runs `mine(shard, t, &stats)` for every shard on its own thread and
// merges rule sets + aggregate stats. MineShard must be callable as
// StatusOr<RuleSetT>(const std::vector<uint8_t>&, uint32_t, MiningStats*).
template <typename RuleSetT, typename MineShard>
StatusOr<RuleSetT> RunSharded(const std::vector<uint32_t>& column_ones,
                              uint32_t num_threads,
                              const ObserveContext& obs, MineShard mine,
                              ParallelMiningStats* stats) {
  ParallelMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMiningStats{};
  Stopwatch total_sw;

  const auto shards = MakeColumnShards(column_ones, num_threads);
  stats->shards = num_threads;

  std::vector<StatusOr<RuleSetT>> results(num_threads,
                                          StatusOr<RuleSetT>(RuleSetT{}));
  std::vector<MiningStats> shard_stats(num_threads);
  {
    // Parent span on lane 0; per-shard engine spans use lanes 1..N.
    ScopedSpan parent(obs.trace, "parallel/mine", 0);
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t]() {
        results[t] = mine(shards[t], t, &shard_stats[t]);
      });
    }
    for (auto& w : workers) w.join();
  }

  RuleSetT merged;
  Status first_error = Status::OK();
  for (uint32_t t = 0; t < num_threads; ++t) {
    if (!results[t].ok()) {
      // Prefer a non-Cancelled error; with cooperative cancellation
      // every shard reports kCancelled, and any one of them will do.
      if (first_error.ok() ||
          (first_error.code() == StatusCode::kCancelled &&
           results[t].status().code() != StatusCode::kCancelled)) {
        first_error = results[t].status();
      }
      continue;
    }
    for (const auto& rule : *results[t]) merged.Add(rule);
    stats->max_shard_seconds =
        std::max(stats->max_shard_seconds, shard_stats[t].total_seconds);
    stats->sum_shard_seconds += shard_stats[t].total_seconds;
    stats->sum_peak_counter_bytes += shard_stats[t].peak_counter_bytes;
    stats->max_peak_counter_bytes = std::max(
        stats->max_peak_counter_bytes, shard_stats[t].peak_counter_bytes);
  }
  if (!first_error.ok()) return first_error;
  stats->per_shard = std::move(shard_stats);
  merged.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "parallel", *stats);
  return merged;
}

// Serial fallback bookkeeping shared by both miners.
void FillSerialStats(const MiningStats& serial_stats,
                     ParallelMiningStats* stats) {
  if (stats == nullptr) return;
  *stats = ParallelMiningStats{};
  stats->shards = 1;
  stats->total_seconds = serial_stats.total_seconds;
  stats->max_shard_seconds = serial_stats.total_seconds;
  stats->sum_shard_seconds = serial_stats.total_seconds;
  stats->sum_peak_counter_bytes = serial_stats.peak_counter_bytes;
  stats->max_peak_counter_bytes = serial_stats.peak_counter_bytes;
  stats->per_shard.push_back(serial_stats);
}

}  // namespace

StatusOr<ImplicationRuleSet> MineImplicationsParallel(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineImplications(matrix, options, &serial_stats);
    if (out.ok()) FillSerialStats(serial_stats, stats);
    return out;
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  return RunSharded<ImplicationRuleSet>(
      matrix.column_ones(), threads, options.policy.observe,
      [&matrix, &options, &cancel](const std::vector<uint8_t>& shard,
                                   uint32_t t, MiningStats* shard_stats) {
        ImplicationMiningOptions shard_options = options;
        shard_options.policy.observe = ShardContext(
            options.policy.observe, static_cast<int>(t), cancel);
        return MineImplicationsSharded(matrix, shard_options, shard,
                                       shard_stats);
      },
      stats);
}

StatusOr<SimilarityRuleSet> MineSimilaritiesParallel(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineSimilarities(matrix, options, &serial_stats);
    if (out.ok()) FillSerialStats(serial_stats, stats);
    return out;
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  return RunSharded<SimilarityRuleSet>(
      matrix.column_ones(), threads, options.policy.observe,
      [&matrix, &options, &cancel](const std::vector<uint8_t>& shard,
                                   uint32_t t, MiningStats* shard_stats) {
        SimilarityMiningOptions shard_options = options;
        shard_options.policy.observe = ShardContext(
            options.policy.observe, static_cast<int>(t), cancel);
        return MineSimilaritiesSharded(matrix, shard_options, shard,
                                       shard_stats);
      },
      stats);
}

}  // namespace dmc
