#include "core/parallel_dmc.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "observe/metrics.h"
#include "observe/progress.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace dmc {

std::vector<std::vector<uint8_t>> MakeColumnShards(
    const std::vector<uint32_t>& column_ones, uint32_t num_shards) {
  std::vector<std::vector<uint8_t>> shards(
      num_shards, std::vector<uint8_t>(column_ones.size(), 0));
  // Greedy balanced partition by 1-count (longest-processing-time rule).
  std::vector<ColumnId> order(column_ones.size());
  std::iota(order.begin(), order.end(), ColumnId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&column_ones](ColumnId a, ColumnId b) {
                     return column_ones[a] > column_ones[b];
                   });
  std::vector<uint64_t> load(num_shards, 0);
  for (ColumnId c : order) {
    const uint32_t target = static_cast<uint32_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    shards[target][c] = 1;
    load[target] += column_ones[c] + 1;
  }
  return shards;
}

namespace {

uint32_t ResolveThreads(const ParallelOptions& parallel) {
  if (parallel.num_threads > 0) return parallel.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

// Per-shard observability context: spans land on lane t+1, progress
// updates are stamped with the shard index, and one shard's cancel
// request (or the user callback returning false) stops every shard at
// its next progress interval via the shared flag.
ObserveContext ShardContext(const ObserveContext& base, int shard,
                            const std::shared_ptr<std::atomic<bool>>& cancel) {
  ObserveContext ctx = base;
  ctx.shard = shard;
  ctx.trace_lane = shard + 1;
  if (base.has_progress()) {
    ProgressCallback inner = base.progress;
    ctx.progress = [inner, cancel](const ProgressUpdate& update) {
      if (cancel->load(std::memory_order_relaxed)) return false;
      if (inner(update)) return true;
      cancel->store(true, std::memory_order_relaxed);
      return false;
    };
  }
  return ctx;
}

// A shard error is worth another attempt only when it's transient;
// malformed input or cancellation will fail identically every time.
bool ShardRetryable(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kResourceExhausted;
}

// Runs `mine(shard, t, &stats)` for every shard on its own thread and
// merges rule sets + aggregate stats. MineShard must be callable as
// StatusOr<RuleSetT>(const std::vector<uint8_t>&, uint32_t, MiningStats*).
//
// Failure containment: a shard whose mining fails with a transient error
// is retried in-thread up to parallel.max_shard_retries times; shards
// still failing after that are re-mined serially on the calling thread
// (when parallel.degrade_to_serial). Only if that also fails does the
// run return an error. Every failed attempt lands in stats->shard_errors.
template <typename RuleSetT, typename MineShard>
StatusOr<RuleSetT> RunSharded(const std::vector<uint32_t>& column_ones,
                              uint32_t num_threads,
                              const ParallelOptions& parallel,
                              const ObserveContext& obs, MineShard mine,
                              ParallelMiningStats* stats) {
  ParallelMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMiningStats{};
  Stopwatch total_sw;

  const auto shards = MakeColumnShards(column_ones, num_threads);
  stats->shards = num_threads;

  std::vector<StatusOr<RuleSetT>> results(num_threads,
                                          StatusOr<RuleSetT>(RuleSetT{}));
  std::vector<MiningStats> shard_stats(num_threads);
  // Guards shard_errors; worker threads append concurrently. A local
  // capability, so the RAII guard (not DMC_GUARDED_BY, which needs a
  // member) is the whole discipline.
  Mutex errors_mu;
  std::vector<std::string> shard_errors;
  std::atomic<uint64_t> retries{0};
  std::atomic<uint32_t> failed{0};

  auto record_error = [&](uint32_t t, const Status& st) {
    MutexLock lock(errors_mu);
    shard_errors.push_back("shard " + std::to_string(t) + ": " +
                           st.ToString());
  };
  // One mining attempt chain for shard t: initial try plus bounded
  // in-thread retries of transient failures.
  auto attempt_shard = [&](uint32_t t) {
    bool failed_before = false;
    for (uint32_t attempt = 0;; ++attempt) {
      results[t] = mine(shards[t], t, &shard_stats[t]);
      if (results[t].ok()) {
        if (failed_before && obs.metrics != nullptr) {
          obs.metrics->IncrCounter("dmc.faults.recovered");
        }
        return;
      }
      const Status& st = results[t].status();
      if (st.code() == StatusCode::kCancelled) return;
      if (!failed_before) {
        failed_before = true;
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      record_error(t, st);
      if (obs.metrics != nullptr && fail::IsInjectedFault(st)) {
        obs.metrics->IncrCounter("dmc.faults.injected");
      }
      if (!ShardRetryable(st) || attempt >= parallel.max_shard_retries) {
        return;
      }
      retries.fetch_add(1, std::memory_order_relaxed);
      if (obs.metrics != nullptr) {
        obs.metrics->IncrCounter("dmc.faults.retried");
      }
    }
  };

  {
    // Parent span on lane 0; per-shard engine spans use lanes 1..N.
    ScopedSpan parent(obs.trace, "parallel/mine", 0);
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (uint32_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&attempt_shard, t]() { attempt_shard(t); });
    }
    for (auto& w : workers) w.join();
  }

  // Degradation pass: surviving shards already hold their results; each
  // shard that exhausted its retries gets one serial attempt with the
  // whole machine to itself.
  if (parallel.degrade_to_serial) {
    for (uint32_t t = 0; t < num_threads; ++t) {
      if (results[t].ok() ||
          results[t].status().code() == StatusCode::kCancelled ||
          !ShardRetryable(results[t].status())) {
        continue;
      }
      ScopedSpan span(obs.trace, "parallel/degraded_shard", 0);
      results[t] = mine(shards[t], t, &shard_stats[t]);
      if (results[t].ok()) {
        ++stats->shards_degraded;
        if (obs.metrics != nullptr) {
          obs.metrics->IncrCounter("dmc.faults.recovered");
        }
      } else {
        record_error(t, results[t].status());
        if (obs.metrics != nullptr &&
            fail::IsInjectedFault(results[t].status())) {
          obs.metrics->IncrCounter("dmc.faults.injected");
        }
      }
    }
  }

  stats->shards_failed = failed.load(std::memory_order_relaxed);
  stats->shard_retries = retries.load(std::memory_order_relaxed);
  stats->shard_errors = std::move(shard_errors);

  RuleSetT merged;
  Status first_error = Status::OK();
  for (uint32_t t = 0; t < num_threads; ++t) {
    if (!results[t].ok()) {
      // Prefer a non-Cancelled error; with cooperative cancellation
      // every shard reports kCancelled, and any one of them will do.
      if (first_error.ok() ||
          (first_error.code() == StatusCode::kCancelled &&
           results[t].status().code() != StatusCode::kCancelled)) {
        first_error = results[t].status();
      }
      continue;
    }
    for (const auto& rule : *results[t]) merged.Add(rule);
    stats->max_shard_seconds =
        std::max(stats->max_shard_seconds, shard_stats[t].total_seconds);
    stats->sum_shard_seconds += shard_stats[t].total_seconds;
    stats->sum_peak_counter_bytes += shard_stats[t].peak_counter_bytes;
    stats->max_peak_counter_bytes = std::max(
        stats->max_peak_counter_bytes, shard_stats[t].peak_counter_bytes);
  }
  if (!first_error.ok()) return first_error;
  stats->per_shard = std::move(shard_stats);
  merged.Canonicalize();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "parallel", *stats);
  return merged;
}

// Serial fallback bookkeeping shared by both miners.
void FillSerialStats(const MiningStats& serial_stats,
                     ParallelMiningStats* stats) {
  if (stats == nullptr) return;
  *stats = ParallelMiningStats{};
  stats->shards = 1;
  stats->total_seconds = serial_stats.total_seconds;
  stats->max_shard_seconds = serial_stats.total_seconds;
  stats->sum_shard_seconds = serial_stats.total_seconds;
  stats->sum_peak_counter_bytes = serial_stats.peak_counter_bytes;
  stats->max_peak_counter_bytes = serial_stats.peak_counter_bytes;
  stats->per_shard.push_back(serial_stats);
}

}  // namespace

StatusOr<ImplicationRuleSet> MineImplicationsParallel(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineImplications(matrix, options, &serial_stats);
    if (out.ok()) FillSerialStats(serial_stats, stats);
    return out;
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  return RunSharded<ImplicationRuleSet>(
      matrix.column_ones(), threads, parallel, options.policy.observe,
      [&matrix, &options, &cancel](const std::vector<uint8_t>& shard,
                                   uint32_t t, MiningStats* shard_stats)
          -> StatusOr<ImplicationRuleSet> {
        if (fail::Enabled()) {
          Status injected = fail::InjectStatus("parallel.shard.mine");
          if (!injected.ok()) return injected;
        }
        ImplicationMiningOptions shard_options = options;
        shard_options.policy.observe = ShardContext(
            options.policy.observe, static_cast<int>(t), cancel);
        return MineImplicationsSharded(matrix, shard_options, shard,
                                       shard_stats);
      },
      stats);
}

StatusOr<SimilarityRuleSet> MineSimilaritiesParallel(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const ParallelOptions& parallel, ParallelMiningStats* stats) {
  const uint32_t threads = ResolveThreads(parallel);
  if (threads <= 1 || matrix.num_columns() < 2) {
    MiningStats serial_stats;
    auto out = MineSimilarities(matrix, options, &serial_stats);
    if (out.ok()) FillSerialStats(serial_stats, stats);
    return out;
  }
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  return RunSharded<SimilarityRuleSet>(
      matrix.column_ones(), threads, parallel, options.policy.observe,
      [&matrix, &options, &cancel](const std::vector<uint8_t>& shard,
                                   uint32_t t, MiningStats* shard_stats)
          -> StatusOr<SimilarityRuleSet> {
        if (fail::Enabled()) {
          Status injected = fail::InjectStatus("parallel.shard.mine");
          if (!injected.ok()) return injected;
        }
        SimilarityMiningOptions shard_options = options;
        shard_options.policy.observe = ShardContext(
            options.policy.observe, static_cast<int>(t), cancel);
        return MineSimilaritiesSharded(matrix, shard_options, shard,
                                       shard_stats);
      },
      stats);
}

}  // namespace dmc
