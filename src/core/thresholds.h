// Integer miss/hit thresholds derived from the real-valued confidence and
// similarity thresholds.
//
// Every component (DMC engines, bitmap fallback, baselines, brute-force
// oracle) uses these exact same functions, so "rule holds" is a single
// consistent integer predicate across the whole library — the property
// tests can then demand exact rule-set equality.

#ifndef DMC_CORE_THRESHOLDS_H_
#define DMC_CORE_THRESHOLDS_H_

#include <cmath>
#include <cstdint>

namespace dmc {

// Guards floor() against double rounding at exact rational boundaries
// (e.g. (1-0.9)*10 evaluating to 0.9999999999999998). Safe because the
// true values are rationals with small denominators whose distance from
// any other integer is far larger than this.
inline constexpr double kThresholdEpsilon = 1e-6;

/// maxmis(c) from §3.3: the largest number of misses a rule c => * may
/// have while keeping confidence >= min_confidence, given ones(c) = ones.
inline int64_t MaxMissesForConfidence(uint32_t ones, double min_confidence) {
  return static_cast<int64_t>(
      std::floor((1.0 - min_confidence) * ones + kThresholdEpsilon));
}

/// Pair-specific miss budget for similarity (§5): with a = ones(c_i) <=
/// b = ones(c_j) and mis = |S_i \ S_j|, the similarity is
/// (a - mis) / (b + mis), so Sim >= s iff mis <= (a - s*b) / (1 + s).
/// Negative result means the pair can never reach similarity s — this is
/// exactly the column-density pruning condition a/b < s of §5.1.
inline int64_t MaxMissesForSimilarity(uint32_t ones_a, uint32_t ones_b,
                                      double min_similarity) {
  return static_cast<int64_t>(
      std::floor((ones_a - min_similarity * ones_b) / (1.0 + min_similarity) +
                 kThresholdEpsilon));
}

/// Column-level miss budget for DMC-sim: the loosest pair budget any
/// partner of c_i can offer is at b = a (§5: maximized when the partner is
/// equally sparse). Once cnt(c_i) exceeds this, no new candidate can ever
/// be added to c_i's list.
inline int64_t ColumnMaxMissesForSimilarity(uint32_t ones_a,
                                            double min_similarity) {
  return MaxMissesForSimilarity(ones_a, ones_a, min_similarity);
}

/// Minimum |S_i intersect S_j| for the pair to reach similarity s.
inline int64_t MinHitsForSimilarity(uint32_t ones_a, uint32_t ones_b,
                                    double min_similarity) {
  return static_cast<int64_t>(ones_a) -
         MaxMissesForSimilarity(ones_a, ones_b, min_similarity);
}

/// Minimum |S_i intersect S_j| for c_i => c_j to reach the confidence
/// threshold.
inline int64_t MinHitsForConfidence(uint32_t ones, double min_confidence) {
  return static_cast<int64_t>(ones) -
         MaxMissesForConfidence(ones, min_confidence);
}

/// DMC-imp step 3 (sound form; see DESIGN.md): a column is useful below
/// the 100% phase iff it tolerates at least one miss.
inline bool ColumnSurvivesConfidenceCutoff(uint32_t ones,
                                           double min_confidence) {
  return MaxMissesForConfidence(ones, min_confidence) >= 1;
}

/// DMC-sim step 3 (sound form; see DESIGN.md): a column with `ones` 1s can
/// be in a non-identical pair of similarity >= s iff ones/(ones+1) >= s.
inline bool ColumnSurvivesSimilarityCutoff(uint32_t ones,
                                           double min_similarity) {
  if (ones == 0) return false;
  return static_cast<double>(ones) / (ones + 1.0) >=
         min_similarity - kThresholdEpsilon;
}

}  // namespace dmc

#endif  // DMC_CORE_THRESHOLDS_H_
