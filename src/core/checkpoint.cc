#include "core/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_io.h"
#include "util/failpoint.h"

namespace dmc {

namespace {

constexpr char kMagic[8] = {'D', 'M', 'C', 'C', 'K', 'P', 'T', '\n'};
constexpr char kEndMagic[4] = {'D', 'M', 'C', 'E'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1aInit() { return 1469598103934665603ULL; }

uint64_t Fnv1aUpdate(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
void AppendLE(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadLE(const std::string& data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return DataLossError("checkpoint " + path + ": " + what);
}

}  // namespace

StatusOr<FileFingerprint> FingerprintFile(const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("checkpoint.fingerprint"));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError("cannot open for fingerprint: " + path);
  FileFingerprint fp;
  fp.hash = Fnv1aInit();
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof(buf));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    fp.hash = Fnv1aUpdate(fp.hash, buf, static_cast<size_t>(n));
    fp.bytes += static_cast<uint64_t>(n);
  }
  if (in.bad()) return IOError("read failed while fingerprinting " + path);
  return fp;
}

std::string ExternalBucketPath(const std::string& work_dir, int bucket) {
  return work_dir + "/dmc_bucket_" + std::to_string(bucket) + ".txt";
}

Status WriteCheckpointFile(const ExternalCheckpoint& cp,
                           const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("checkpoint.write"));
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLE<uint32_t>(&out, kVersion);
  AppendLE<uint64_t>(&out, cp.input.bytes);
  AppendLE<uint64_t>(&out, cp.input.hash);
  AppendLE<uint8_t>(&out, cp.bucketed ? 1 : 0);
  AppendLE<uint32_t>(&out, cp.num_columns);
  AppendLE<uint64_t>(&out, cp.num_rows);
  for (uint32_t ones : cp.column_ones) AppendLE<uint32_t>(&out, ones);
  AppendLE<uint32_t>(&out, static_cast<uint32_t>(cp.buckets.size()));
  for (const auto& b : cp.buckets) {
    AppendLE<int32_t>(&out, b.id);
    AppendLE<uint64_t>(&out, b.rows);
    AppendLE<uint64_t>(&out, b.bytes);
  }
  AppendLE<uint64_t>(&out, Fnv1aUpdate(Fnv1aInit(), out.data(), out.size()));
  out.append(kEndMagic, sizeof(kEndMagic));
  return AtomicWriteFile(path, out);
}

StatusOr<ExternalCheckpoint> ReadCheckpointFile(const std::string& path) {
  if (fail::Enabled()) {
    DMC_RETURN_IF_ERROR(fail::InjectStatus("checkpoint.read"));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError("cannot open checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return IOError("read failed for checkpoint: " + path);
  const std::string data = buffer.str();

  if (data.size() < sizeof(kMagic) + 4 + 8 + 8 + 1 + 4 + 8 + 4 + 8 + 4) {
    return Corrupt(path, "truncated (" + std::to_string(data.size()) +
                             " bytes)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  size_t offset = sizeof(kMagic);
  uint32_t version = 0;
  (void)ReadLE(data, &offset, &version);
  if (version != kVersion) {
    return Corrupt(path, "unsupported version " + std::to_string(version));
  }

  ExternalCheckpoint cp;
  uint8_t bucketed = 0;
  if (!ReadLE(data, &offset, &cp.input.bytes) ||
      !ReadLE(data, &offset, &cp.input.hash) ||
      !ReadLE(data, &offset, &bucketed) ||
      !ReadLE(data, &offset, &cp.num_columns) ||
      !ReadLE(data, &offset, &cp.num_rows)) {
    return Corrupt(path, "truncated header");
  }
  cp.bucketed = bucketed != 0;
  // Guard the vector resize against a corrupt column count: the header
  // cannot legitimately claim more u32s than bytes left in the file.
  if (static_cast<uint64_t>(cp.num_columns) * 4 > data.size() - offset) {
    return Corrupt(path, "column count " + std::to_string(cp.num_columns) +
                             " exceeds file size");
  }
  cp.column_ones.resize(cp.num_columns);
  for (uint32_t& ones : cp.column_ones) {
    if (!ReadLE(data, &offset, &ones)) {
      return Corrupt(path, "truncated in column_ones");
    }
  }
  uint32_t bucket_count = 0;
  if (!ReadLE(data, &offset, &bucket_count)) {
    return Corrupt(path, "truncated before bucket list");
  }
  if (static_cast<uint64_t>(bucket_count) * 20 > data.size() - offset) {
    return Corrupt(path, "bucket count " + std::to_string(bucket_count) +
                             " exceeds file size");
  }
  cp.buckets.resize(bucket_count);
  for (auto& b : cp.buckets) {
    if (!ReadLE(data, &offset, &b.id) || !ReadLE(data, &offset, &b.rows) ||
        !ReadLE(data, &offset, &b.bytes)) {
      return Corrupt(path, "truncated in bucket list");
    }
  }
  const size_t body_end = offset;
  uint64_t stored = 0;
  if (!ReadLE(data, &offset, &stored)) {
    return Corrupt(path, "truncated before checksum");
  }
  const uint64_t actual = Fnv1aUpdate(Fnv1aInit(), data.data(), body_end);
  if (stored != actual) {
    return Corrupt(path, "checksum mismatch (stored " + std::to_string(stored) +
                             ", computed " + std::to_string(actual) + ")");
  }
  if (data.size() - offset != sizeof(kEndMagic) ||
      std::memcmp(data.data() + offset, kEndMagic, sizeof(kEndMagic)) != 0) {
    return Corrupt(path, "missing end magic");
  }
  return cp;
}

Status ValidateCheckpoint(const ExternalCheckpoint& cp,
                          const std::string& input_path,
                          const std::string& work_dir) {
  auto fp = FingerprintFile(input_path);
  if (!fp.ok()) return fp.status();
  if (!(*fp == cp.input)) {
    return FailedPreconditionError(
        "checkpoint is stale: input " + input_path +
        " does not match the fingerprint recorded at checkpoint time");
  }
  uint64_t rows = 0;
  for (const auto& b : cp.buckets) {
    const std::string bucket_path = ExternalBucketPath(work_dir, b.id);
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(bucket_path, ec);
    if (ec) {
      return DataLossError("checkpoint bucket file missing: " + bucket_path);
    }
    if (size != b.bytes) {
      return DataLossError("checkpoint bucket file " + bucket_path +
                           " is " + std::to_string(size) +
                           " bytes, expected " + std::to_string(b.bytes) +
                           " (torn write?)");
    }
    rows += b.rows;
  }
  if (cp.bucketed && rows != cp.num_rows) {
    return DataLossError("checkpoint bucket rows sum to " +
                         std::to_string(rows) + ", expected " +
                         std::to_string(cp.num_rows));
  }
  return Status::OK();
}

}  // namespace dmc
