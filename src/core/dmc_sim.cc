#include "core/dmc_sim.h"

#include <algorithm>

#include "core/dmc_sim_pass.h"
#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "core/thresholds.h"
#include "matrix/row_order.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

std::vector<RowId> MakeOrder(const BinaryMatrix& m, RowOrderPolicy policy) {
  switch (policy) {
    case RowOrderPolicy::kIdentity:
      return IdentityOrder(m);
    case RowOrderPolicy::kDensityBuckets:
      return DensityBucketOrder(m).order;
    case RowOrderPolicy::kExactSort:
      return SortedByDensityOrder(m);
  }
  return IdentityOrder(m);
}

}  // namespace

namespace {

StatusOr<SimilarityRuleSet> MineSimilaritiesImpl(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const std::vector<uint8_t>* lhs_shard, MiningStats* stats) {
  if (!(options.min_similarity > 0.0) || options.min_similarity > 1.0) {
    return InvalidArgumentError("min_similarity must be in (0, 1]");
  }
  MiningStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MiningStats{};

  const DmcPolicy& policy = options.policy;
  const ObserveContext& obs = policy.observe;
  const double minsim = options.min_similarity;
  const ColumnId num_cols = matrix.num_columns();
  const auto& ones = matrix.column_ones();

  Stopwatch total_sw;
  Stopwatch prescan_sw;
  std::vector<RowId> order;
  {
    ScopedSpan span(obs.trace, "sim/prescan", obs.trace_lane);
    order = MakeOrder(matrix, policy.row_order);
  }
  stats->prescan_seconds = prescan_sw.ElapsedSeconds();
  stats->kernel = KernelName(ResolveKernel(policy.kernel));

  MemoryTracker tracker;
  SimilarityRuleSet out;

  const bool run_hundred =
      policy.hundred_percent_phase || minsim == 1.0;

  if (run_hundred) {
    // Step 2: identical columns. With minsim = 1 the pair budgets force
    // equal 1-counts and zero misses, which is exactly the paper's
    // restriction.
    std::vector<uint8_t> active(num_cols, 0);
    for (ColumnId c = 0; c < num_cols; ++c) active[c] = ones[c] > 0;
    SimilarityPassInput input;
    input.matrix = &matrix;
    input.order = order;
    input.min_similarity = 1.0;
    input.active = &active;
    input.lhs_shard = lhs_shard;
    input.emit_identical = true;
    input.bytes_per_entry = MissCounterTable::kEntryBytesIdOnly;
    input.policy = &policy;
    input.tracker = &tracker;
    if (policy.record_history) {
      input.memory_history = &stats->memory_history;
      input.candidate_history = &stats->candidate_history;
    }
    input.phase = "hundred_phase";
    SimilarityPassResult res;
    {
      ScopedSpan span(obs.trace, "sim/hundred_phase", obs.trace_lane);
      res = RunSimilarityPass(input, &out);
    }
    stats->hundred_base_seconds = res.base_seconds;
    stats->hundred_bitmap_seconds = res.bitmap_seconds;
    stats->hundred_bitmap_triggered = res.bitmap_used;
    stats->peak_candidates =
        std::max(stats->peak_candidates, res.peak_entries);
    stats->rules_from_hundred_phase = out.size();
    if (res.cancelled) {
      return CancelledError("mine cancelled in hundred_phase after " +
                            std::to_string(res.rows_processed) + " rows");
    }
  }

  if (minsim < 1.0) {
    // Step 3 cutoff (sound form): keep a column iff it can appear in a
    // non-identical pair of similarity >= minsim.
    std::vector<uint8_t> active(num_cols, 0);
    size_t cut = 0;
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (ones[c] == 0) continue;
      if (run_hundred && !ColumnSurvivesSimilarityCutoff(ones[c], minsim)) {
        ++cut;
        continue;
      }
      active[c] = 1;
    }
    stats->columns_cut_off = cut;

    SimilarityPassInput input;
    input.matrix = &matrix;
    input.order = order;
    input.min_similarity = minsim;
    input.active = &active;
    input.lhs_shard = lhs_shard;
    input.emit_identical = !run_hundred;
    input.bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    input.policy = &policy;
    input.tracker = &tracker;
    if (policy.record_history) {
      input.memory_history = &stats->memory_history;
      input.candidate_history = &stats->candidate_history;
    }
    input.phase = "sub_phase";
    const size_t before = out.size();
    SimilarityPassResult res;
    {
      ScopedSpan span(obs.trace, "sim/sub_phase", obs.trace_lane);
      res = RunSimilarityPass(input, &out);
    }
    stats->sub_base_seconds = res.base_seconds;
    stats->sub_bitmap_seconds = res.bitmap_seconds;
    stats->sub_bitmap_triggered = res.bitmap_used;
    stats->sub_bitmap_rows = res.bitmap_rows;
    stats->peak_candidates =
        std::max(stats->peak_candidates, res.peak_entries);
    stats->rules_from_sub_phase = out.size() - before;
    if (res.cancelled) {
      return CancelledError("mine cancelled in sub_phase after " +
                            std::to_string(res.rows_processed) + " rows");
    }
  }

  out.Canonicalize();
  stats->peak_counter_bytes = tracker.peak_bytes();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "sim", *stats);
  return out;
}

}  // namespace

StatusOr<SimilarityRuleSet> MineSimilarities(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    MiningStats* stats) {
  return MineSimilaritiesImpl(matrix, options, nullptr, stats);
}

StatusOr<SimilarityRuleSet> MineSimilaritiesSharded(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const std::vector<uint8_t>& lhs_shard, MiningStats* stats) {
  if (lhs_shard.size() != matrix.num_columns()) {
    return InvalidArgumentError("lhs_shard size must match column count");
  }
  return MineSimilaritiesImpl(matrix, options, &lhs_shard, stats);
}

}  // namespace dmc
