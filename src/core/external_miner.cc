#include "core/external_miner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "matrix/matrix_io.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

// Bucket index of a row with `density` ones (densities 0/1 share 0).
int BucketIndex(size_t density) {
  int b = 0;
  while (density > 1) {
    density >>= 1;
    ++b;
  }
  return b;
}

std::string BucketPath(const std::string& work_dir, int bucket) {
  return work_dir + "/dmc_bucket_" + std::to_string(bucket) + ".txt";
}

// Shared setup/teardown of the two-pass disk pipeline.
class ExternalRun {
 public:
  ExternalRun(std::string path, std::string work_dir, bool bucketed)
      : path_(std::move(path)),
        work_dir_(std::move(work_dir)),
        bucketed_(bucketed) {}

  ~ExternalRun() {
    for (int b : used_buckets_) {
      std::error_code ec;
      std::filesystem::remove(BucketPath(work_dir_, b), ec);
    }
  }

  ExternalRun(const ExternalRun&) = delete;
  ExternalRun& operator=(const ExternalRun&) = delete;

  /// Pass 1 + (optional) bucket partitioning.
  Status Prepare(ExternalMiningStats* stats) {
    Stopwatch pass1_sw;
    {
      std::ifstream in(path_);
      if (!in) return IOError("cannot open " + path_);
      auto scanned = ScanMatrixText(in);
      if (!scanned.ok()) return scanned.status();
      first_pass_ = std::move(scanned).value();
    }
    stats->pass1_seconds = pass1_sw.ElapsedSeconds();
    stats->rows = first_pass_.num_rows;
    stats->columns = first_pass_.num_columns;

    Stopwatch partition_sw;
    if (bucketed_) {
      constexpr int kMaxBuckets = 33;
      // The bucket partitioner is the one core component that genuinely
      // writes files (the paper's disk pipeline).
      std::vector<std::ofstream> outs(kMaxBuckets);  // dmc_lint: ignore
      std::vector<uint8_t> seen(kMaxBuckets, 0);
      std::ifstream in(path_);
      if (!in) return IOError("cannot reopen " + path_);
      const Status scan = ForEachRowText(
          in, [&](std::span<const ColumnId> row) -> Status {
            const int b = BucketIndex(row.size());
            if (!seen[b]) {
              seen[b] = 1;
              outs[b].open(BucketPath(work_dir_, b));
              if (!outs[b]) {
                return IOError("cannot create bucket file in " + work_dir_);
              }
              used_buckets_.push_back(b);
            }
            bool first = true;
            for (ColumnId c : row) {
              if (!first) outs[b] << ' ';
              outs[b] << c;
              first = false;
            }
            outs[b] << '\n';
            return Status::OK();
          });
      if (!scan.ok()) return scan;
      for (int b : used_buckets_) {
        outs[b].close();
        if (!outs[b]) return IOError("bucket write failed");
      }
      std::sort(used_buckets_.begin(), used_buckets_.end());
      stats->bucket_files = used_buckets_.size();
    }
    stats->partition_seconds = partition_sw.ElapsedSeconds();
    return Status::OK();
  }

  const FirstPassStats& first_pass() const { return first_pass_; }

  /// One replay over the data in mining order; sets `status` on IO error.
  template <typename Sink>
  void Replay(Sink&& sink, Status* status) {
    if (!status->ok()) return;
    if (!bucketed_) {
      std::ifstream in(path_);
      if (!in) {
        *status = IOError("cannot reopen " + path_);
        return;
      }
      *status = ForEachRowText(in, [&sink](std::span<const ColumnId> row) {
        sink(row);
        return Status::OK();
      });
      return;
    }
    for (int b : used_buckets_) {
      std::ifstream in(BucketPath(work_dir_, b));
      if (!in) {
        *status = IOError("cannot open bucket " + std::to_string(b));
        return;
      }
      *status = ForEachRowText(in, [&sink](std::span<const ColumnId> row) {
        sink(row);
        return Status::OK();
      });
      if (!status->ok()) return;
    }
  }

 private:
  std::string path_;
  std::string work_dir_;
  bool bucketed_;
  FirstPassStats first_pass_;
  std::vector<int> used_buckets_;
};

}  // namespace

StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats) {
  ExternalMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExternalMiningStats{};
  Stopwatch total_sw;

  const ObserveContext& obs = options.policy.observe;
  ExternalRun run(path, work_dir,
                  options.policy.row_order != RowOrderPolicy::kIdentity);
  {
    ScopedSpan span(obs.trace, "external/prepare", obs.trace_lane);
    DMC_RETURN_IF_ERROR(run.Prepare(stats));
  }

  Stopwatch mine_sw;
  Status replay_status = Status::OK();
  auto rules = StreamImplications(
      run.first_pass().num_columns, run.first_pass().column_ones,
      run.first_pass().num_rows, options, [&](auto&& sink) {
        run.Replay(sink, &replay_status);
      });
  stats->mine_seconds = mine_sw.ElapsedSeconds();
  if (!replay_status.ok()) return replay_status;
  if (!rules.ok()) return rules.status();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "external", *stats);
  return rules;
}

StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats) {
  ExternalMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExternalMiningStats{};
  Stopwatch total_sw;

  const ObserveContext& obs = options.policy.observe;
  ExternalRun run(path, work_dir,
                  options.policy.row_order != RowOrderPolicy::kIdentity);
  {
    ScopedSpan span(obs.trace, "external/prepare", obs.trace_lane);
    DMC_RETURN_IF_ERROR(run.Prepare(stats));
  }

  Stopwatch mine_sw;
  Status replay_status = Status::OK();
  auto pairs = StreamSimilarities(
      run.first_pass().num_columns, run.first_pass().column_ones,
      run.first_pass().num_rows, options, [&](auto&& sink) {
        run.Replay(sink, &replay_status);
      });
  stats->mine_seconds = mine_sw.ElapsedSeconds();
  if (!replay_status.ok()) return replay_status;
  if (!pairs.ok()) return pairs.status();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "external", *stats);
  return pairs;
}

}  // namespace dmc
