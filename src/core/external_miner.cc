#include "core/external_miner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "core/checkpoint.h"
#include "core/streaming_imp.h"
#include "core/streaming_sim.h"
#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

// Bucket index of a row with `density` ones (densities 0/1 share 0).
int BucketIndex(size_t density) {
  int b = 0;
  while (density > 1) {
    density >>= 1;
    ++b;
  }
  return b;
}

// Counts a surfaced injected fault so dashboards can tell "engine error"
// from "fault-injection harness did its job".
void CountInjected(const ObserveContext& obs, const Status& status) {
  if (obs.metrics != nullptr && fail::IsInjectedFault(status)) {
    obs.metrics->IncrCounter("dmc.faults.injected");
  }
}

}  // namespace

ExternalInput::ExternalInput(std::string path, std::string work_dir,
                             bool bucketed, const ExternalIoOptions& io,
                             const ObserveContext& obs,
                             ExternalMiningStats* stats)
    : path_(std::move(path)),
      work_dir_(std::move(work_dir)),
      bucketed_(bucketed),
      io_(io),
      obs_(obs),
      stats_(stats) {}

ExternalInput::~ExternalInput() {
  // Artifacts survive when checkpointing (a later run resumes from
  // them), when the caller asked to keep them, or when they were
  // adopted from another process that owns them; otherwise every exit
  // path — success or failure — cleans up.
  if (borrowed_ || io_.keep_artifacts || !io_.checkpoint_path.empty()) {
    return;
  }
  for (int b : used_buckets_) {
    std::error_code ec;
    std::filesystem::remove(ExternalBucketPath(work_dir_, b), ec);
  }
}

Status ExternalInput::Prepare() {
  if (io_.resume && !io_.checkpoint_path.empty() && TryResume()) {
    return Status::OK();
  }

  Stopwatch pass1_sw;
  {
    std::ifstream in;
    DMC_RETURN_IF_ERROR(OpenForRead("external.pass1.open", path_, &in));
    auto scanned = ScanMatrixText(in);
    if (!scanned.ok()) return scanned.status();
    first_pass_ = std::move(scanned).value();
  }
  if (stats_ != nullptr) {
    stats_->pass1_seconds = pass1_sw.ElapsedSeconds();
    stats_->rows = first_pass_.num_rows;
    stats_->columns = first_pass_.num_columns;
  }

  Stopwatch partition_sw;
  if (bucketed_) {
    DMC_RETURN_IF_ERROR(Partition());
    if (stats_ != nullptr) stats_->bucket_files = used_buckets_.size();
  }
  if (stats_ != nullptr) {
    stats_->partition_seconds = partition_sw.ElapsedSeconds();
  }

  if (!io_.checkpoint_path.empty()) {
    DMC_RETURN_IF_ERROR(WriteCheckpoint());
  }
  return Status::OK();
}

void ExternalInput::AdoptPlan(FirstPassStats first_pass,
                              std::vector<int> buckets) {
  first_pass_ = std::move(first_pass);
  used_buckets_ = std::move(buckets);
  std::sort(used_buckets_.begin(), used_buckets_.end());
  borrowed_ = true;
  if (stats_ != nullptr) {
    stats_->rows = first_pass_.num_rows;
    stats_->columns = first_pass_.num_columns;
    stats_->bucket_files = used_buckets_.size();
  }
}

Status ExternalInput::Replay(const RowSink& sink) {
  if (!bucketed_) {
    std::ifstream in;
    DMC_RETURN_IF_ERROR(OpenForRead("external.replay.open", path_, &in));
    return ForEachRowText(in, [&sink](std::span<const ColumnId> row) {
      sink(row);
      return Status::OK();
    });
  }
  for (int b : used_buckets_) {
    std::ifstream in;
    DMC_RETURN_IF_ERROR(OpenForRead("external.replay.open",
                                    ExternalBucketPath(work_dir_, b), &in));
    DMC_RETURN_IF_ERROR(
        ForEachRowText(in, [&sink](std::span<const ColumnId> row) {
          sink(row);
          return Status::OK();
        }));
  }
  return Status::OK();
}

Status ExternalInput::OpenForRead(const char* site,
                                  const std::string& file_path,
                                  std::ifstream* in) {
  return RetryOp([&]() -> Status {
    if (fail::Enabled()) {
      DMC_RETURN_IF_ERROR(fail::InjectStatus(site));
    }
    if (in->is_open()) in->close();
    in->clear();
    in->open(file_path);
    if (!*in) return IOError("cannot open " + file_path);
    return Status::OK();
  });
}

Status ExternalInput::RetryOp(const std::function<Status()>& op) {
  uint64_t retries = 0;
  const Status st =
      RetryWithBackoff(io_.retry, op, [&](int, const Status& failed) {
        ++retries;
        if (obs_.metrics != nullptr) {
          obs_.metrics->IncrCounter("dmc.faults.retried");
          if (fail::IsInjectedFault(failed)) {
            obs_.metrics->IncrCounter("dmc.faults.injected");
          }
        }
      });
  if (stats_ != nullptr) stats_->io_retries += retries;
  if (st.ok() && retries > 0 && obs_.metrics != nullptr) {
    obs_.metrics->IncrCounter("dmc.faults.recovered");
  }
  return st;
}

Status ExternalInput::Partition() {
  constexpr int kMaxBuckets = 33;
  // The bucket partitioner is the one core component that genuinely
  // writes files (the paper's disk pipeline).
  std::vector<std::ofstream> outs(kMaxBuckets);  // dmc_lint: ignore
  std::vector<uint8_t> seen(kMaxBuckets, 0);
  std::vector<uint64_t> rows_in_bucket(kMaxBuckets, 0);
  std::ifstream in;
  DMC_RETURN_IF_ERROR(OpenForRead("external.partition.open", path_, &in));
  const bool inject = fail::Enabled();
  const Status scan = ForEachRowText(
      in, [&](std::span<const ColumnId> row) -> Status {
        if (inject) {
          DMC_RETURN_IF_ERROR(fail::InjectStatus("external.spill.write"));
        }
        const int b = BucketIndex(row.size());
        if (!seen[b]) {
          seen[b] = 1;
          outs[b].open(ExternalBucketPath(work_dir_, b));
          if (!outs[b]) {
            return IOError("cannot create bucket file in " + work_dir_);
          }
          used_buckets_.push_back(b);
        }
        bool first = true;
        for (ColumnId c : row) {
          if (!first) outs[b] << ' ';
          outs[b] << c;
          first = false;
        }
        outs[b] << '\n';
        if (!outs[b]) {
          return IOError("write failed for bucket " + std::to_string(b) +
                         " in " + work_dir_);
        }
        ++rows_in_bucket[b];
        return Status::OK();
      });
  if (!scan.ok()) return scan;
  for (int b : used_buckets_) {
    outs[b].close();
    if (!outs[b]) {
      return IOError("bucket close failed for bucket " + std::to_string(b));
    }
  }
  std::sort(used_buckets_.begin(), used_buckets_.end());
  bucket_rows_.assign(kMaxBuckets, 0);
  for (int b : used_buckets_) bucket_rows_[b] = rows_in_bucket[b];
  return Status::OK();
}

Status ExternalInput::WriteCheckpoint() {
  ExternalCheckpoint cp;
  auto fp = FingerprintFile(path_);
  if (!fp.ok()) return fp.status();
  cp.input = *fp;
  cp.bucketed = bucketed_;
  cp.num_columns = first_pass_.num_columns;
  cp.num_rows = first_pass_.num_rows;
  cp.column_ones = first_pass_.column_ones;
  for (int b : used_buckets_) {
    const std::string bucket_path = ExternalBucketPath(work_dir_, b);
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(bucket_path, ec);
    if (ec) {
      return IOError("cannot stat bucket file " + bucket_path);
    }
    cp.buckets.push_back(
        {b, bucket_rows_.empty() ? 0 : bucket_rows_[b], size});
  }
  return WriteCheckpointFile(cp, io_.checkpoint_path);
}

bool ExternalInput::TryResume() {
  auto cp = ReadCheckpointFile(io_.checkpoint_path);
  if (!cp.ok()) return false;
  if (cp->bucketed != bucketed_) return false;
  if (!ValidateCheckpoint(*cp, path_, work_dir_).ok()) return false;
  first_pass_ = FirstPassStats{};
  first_pass_.num_columns = cp->num_columns;
  first_pass_.num_rows = static_cast<RowId>(cp->num_rows);
  first_pass_.column_ones = cp->column_ones;
  used_buckets_.clear();
  for (const auto& b : cp->buckets) used_buckets_.push_back(b.id);
  std::sort(used_buckets_.begin(), used_buckets_.end());
  if (stats_ != nullptr) {
    stats_->rows = cp->num_rows;
    stats_->columns = cp->num_columns;
    stats_->bucket_files = used_buckets_.size();
    stats_->resumed = true;
  }
  return true;
}

StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, const ExternalIoOptions& io,
    ExternalMiningStats* stats) {
  ExternalMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExternalMiningStats{};
  Stopwatch total_sw;

  const ObserveContext& obs = options.policy.observe;
  ExternalInput run(path, work_dir,
                    options.policy.row_order != RowOrderPolicy::kIdentity, io,
                    obs, stats);
  {
    ScopedSpan span(obs.trace, "external/prepare", obs.trace_lane);
    const Status prepared = run.Prepare();
    if (!prepared.ok()) {
      CountInjected(obs, prepared);
      return prepared;
    }
  }

  Stopwatch mine_sw;
  Status replay_status = Status::OK();
  auto rules = StreamImplications(
      run.first_pass().num_columns, run.first_pass().column_ones,
      run.first_pass().num_rows, options, [&](auto&& sink) {
        if (!replay_status.ok()) return;
        replay_status = run.Replay(sink);
      });
  stats->mine_seconds = mine_sw.ElapsedSeconds();
  if (!replay_status.ok()) {
    CountInjected(obs, replay_status);
    return replay_status;
  }
  if (!rules.ok()) {
    CountInjected(obs, rules.status());
    return rules.status();
  }
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "external", *stats);
  return rules;
}

StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats) {
  return MineImplicationsFromFile(path, options, work_dir,
                                  ExternalIoOptions{}, stats);
}

StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, const ExternalIoOptions& io,
    ExternalMiningStats* stats) {
  ExternalMiningStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExternalMiningStats{};
  Stopwatch total_sw;

  const ObserveContext& obs = options.policy.observe;
  ExternalInput run(path, work_dir,
                    options.policy.row_order != RowOrderPolicy::kIdentity, io,
                    obs, stats);
  {
    ScopedSpan span(obs.trace, "external/prepare", obs.trace_lane);
    const Status prepared = run.Prepare();
    if (!prepared.ok()) {
      CountInjected(obs, prepared);
      return prepared;
    }
  }

  Stopwatch mine_sw;
  Status replay_status = Status::OK();
  auto pairs = StreamSimilarities(
      run.first_pass().num_columns, run.first_pass().column_ones,
      run.first_pass().num_rows, options, [&](auto&& sink) {
        if (!replay_status.ok()) return;
        replay_status = run.Replay(sink);
      });
  stats->mine_seconds = mine_sw.ElapsedSeconds();
  if (!replay_status.ok()) {
    CountInjected(obs, replay_status);
    return replay_status;
  }
  if (!pairs.ok()) {
    CountInjected(obs, pairs.status());
    return pairs.status();
  }
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "external", *stats);
  return pairs;
}

StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats) {
  return MineSimilaritiesFromFile(path, options, work_dir, ExternalIoOptions{},
                                  stats);
}

}  // namespace dmc
