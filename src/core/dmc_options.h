// Tuning knobs shared by the DMC engines.

#ifndef DMC_CORE_DMC_OPTIONS_H_
#define DMC_CORE_DMC_OPTIONS_H_

#include <cstddef>

#include "observe/progress.h"

namespace dmc {

/// Which order the second pass visits rows in (§4.1).
enum class RowOrderPolicy {
  /// Original row order (re-ordering disabled; ablation baseline).
  kIdentity,
  /// The paper's density buckets [2^i, 2^{i+1}), sparsest bucket first.
  kDensityBuckets,
  /// Exact sparsest-first sort (upper bound for the bucket approximation).
  kExactSort,
};

/// Which merge/intersection kernel the hot-path scan uses (core/kernels.h).
/// All choices produce byte-identical rule sets and accounting; the knob
/// exists for hardware portability and for the differential parity tests.
enum class MergeKernel {
  /// Runtime dispatch: kSimd when the CPU supports AVX2, else kScalar.
  kAuto,
  /// The pre-arena merge that rebuilds each list into scratch on every
  /// row. Kept as the differential baseline.
  kLegacy,
  /// In-place merge with scalar two-pointer intersection.
  kScalar,
  /// In-place merge with AVX2 sorted-set intersection (falls back to
  /// kScalar on hardware without AVX2).
  kSimd,
};

/// Policy knobs common to DMC-imp and DMC-sim. Defaults reproduce the
/// paper's configuration (§4.4): density-bucket re-ordering, a 100%-rule
/// pre-phase, and a switch to DMC-bitmap when <= 64 rows remain and the
/// counter array exceeds 50 MB.
struct DmcPolicy {
  RowOrderPolicy row_order = RowOrderPolicy::kDensityBuckets;

  /// Run the dedicated 100%-confidence (resp. identical-column) phase
  /// first, then cut off columns that can only produce 100% rules (§4.3,
  /// DMC-imp/DMC-sim step 3).
  bool hundred_percent_phase = true;

  /// Allow switching to the low-memory DMC-bitmap algorithm (§4.2).
  bool bitmap_fallback = true;
  /// Counter-array bytes above which the switch is considered.
  size_t memory_threshold_bytes = size_t{50} << 20;
  /// The switch happens only once this few rows remain, regardless of
  /// memory (§4.4: 64 rows).
  size_t bitmap_max_remaining_rows = 64;

  /// DMC-sim only: §5.1 column-density pruning (skip pairs whose 1-count
  /// ratio is below the similarity threshold).
  bool column_density_pruning = true;
  /// DMC-sim only: §5.2 maximum-hits pruning.
  bool max_hits_pruning = true;

  /// Hot-path merge/intersection kernel; kAuto picks the fastest one the
  /// CPU supports. Every choice yields identical rules and accounting.
  MergeKernel kernel = MergeKernel::kAuto;

  /// Record per-row memory/candidate history into MiningStats (Fig. 3 and
  /// the Example 3.1 traces). O(rows) extra memory; off by default.
  bool record_history = false;

  /// Observability hooks (metrics registry, trace sink, progress/cancel
  /// callback); all null/empty by default, i.e. fully disabled. Carried
  /// here so the hooks flow through the batch, streaming, external and
  /// parallel engines without any signature changes.
  ObserveContext observe;
};

/// Options for MineImplications.
struct ImplicationMiningOptions {
  /// minconf in (0, 1].
  double min_confidence = 0.9;
  DmcPolicy policy;
};

/// Options for MineSimilarities.
struct SimilarityMiningOptions {
  /// minsim in (0, 1].
  double min_similarity = 0.9;
  DmcPolicy policy;
};

}  // namespace dmc

#endif  // DMC_CORE_DMC_OPTIONS_H_
