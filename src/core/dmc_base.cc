#include "core/dmc_base.h"

#include <algorithm>

#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "observe/progress.h"
#include "observe/trace.h"
#include "postings/posting_container.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

class ImplicationScan {
 public:
  ImplicationScan(const ImplicationPassInput& in, ImplicationRuleSet* out)
      : in_(in),
        out_(out),
        m_(*in.matrix),
        ones_(m_.column_ones()),
        maxmis_(*in.max_misses),
        active_(*in.active),
        policy_(*in.policy),
        kernel_(ResolveKernel(policy_.kernel)),
        cnt_(m_.num_columns(), 0),
        table_(m_.num_columns(), in.bytes_per_entry, in.tracker) {
    all_active_ = std::all_of(active_.begin(), active_.end(),
                              [](uint8_t a) { return a != 0; });
    use_vector_ = kernel_ == MergeKernel::kSimd &&
                  kernels::VectorSweepAvailable() &&
                  m_.num_columns() <= kernels::kVectorSweepMaxColumns &&
                  m_.num_rows() < kernels::kVectorSweepMaxRows;
    if (use_vector_) table_.EnableSidecars();
  }

  ImplicationPassResult Run() {
    ImplicationPassResult result;
    Stopwatch base_sw;
    const size_t n = in_.order.size();
    const ObserveContext& obs = policy_.observe;
    const bool check_progress = obs.has_progress();
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    size_t idx = 0;
    bool to_bitmap = false;
    for (; idx < n; ++idx) {
      if (check_progress && idx % interval == 0 &&
          !ReportProgress(obs, idx, n)) {
        result.cancelled = true;
        result.rows_processed = idx;
        result.base_seconds = base_sw.ElapsedSeconds();
        result.peak_entries = table_.peak_entries();
        return result;
      }
      if (policy_.bitmap_fallback &&
          n - idx <= policy_.bitmap_max_remaining_rows &&
          table_.bytes() >= policy_.memory_threshold_bytes) {
        to_bitmap = true;
        break;
      }
      const auto row = FilteredRow(in_.order[idx]);
      if (kernel_ == MergeKernel::kSimd) {
        scratch_.BeginRow(row, m_.num_columns());
      }
      // Step 3(a): update/extend every candidate list touched by this row.
      for (ColumnId cj : row) {
        if (!LhsOk(cj)) continue;
        if (static_cast<int64_t>(cnt_[cj]) <= maxmis_[cj]) {
          MergeWithAdd(cj, row);
        } else if (table_.HasList(cj)) {
          MergeMissOnly(cj, row);
        }
      }
      // Step 3(b): bump counters; flush columns that are complete.
      for (ColumnId cj : row) {
        ++cnt_[cj];
        if (cnt_[cj] == ones_[cj] && table_.HasList(cj)) FlushColumn(cj);
      }
      RecordHistory();
    }
    result.base_seconds = base_sw.ElapsedSeconds();
    result.rows_processed = n;

    if (to_bitmap) {
      Stopwatch bitmap_sw;
      {
        ScopedSpan span(obs.trace, std::string(in_.phase) + "/dmc_bitmap",
                        obs.trace_lane);
        RunBitmapPhases(idx);
      }
      result.bitmap_used = true;
      result.bitmap_rows = n - idx;
      result.bitmap_seconds = bitmap_sw.ElapsedSeconds();
    }
    result.peak_entries = table_.peak_entries();
    if (check_progress) {
      // Final update so watchers see 100%; too late to cancel.
      (void)ReportProgress(obs, n, n);
    }
    return result;
  }

 private:
  // Whether this pass owns column `c` as an antecedent (parallel
  // sharding; null shard = all).
  bool LhsOk(ColumnId c) const {
    return in_.lhs_shard == nullptr || (*in_.lhs_shard)[c] != 0;
  }

  // The paper's candidate ordering (§2): rules go from the sparser column
  // to the denser one, ties broken by id.
  bool Qualifies(ColumnId ck, ColumnId cj) const {
    return ones_[ck] > ones_[cj] ||
           (ones_[ck] == ones_[cj] && ck > cj);
  }

  // Row `r` restricted to active columns (no copy when all are active).
  std::span<const ColumnId> FilteredRow(RowId r) {
    const auto row = m_.Row(r);
    if (all_active_) return row;
    scratch_row_.clear();
    for (ColumnId c : row) {
      if (active_[c]) scratch_row_.push_back(c);
    }
    return scratch_row_;
  }

  // Case cnt(cj) <= maxmis(cj): merge cand(cj) with the row. Row-only
  // qualifying columns join with miss = cnt(cj) (they missed all earlier
  // occurrences of cj — exact, because a prior co-occurrence would have
  // added them already); list-only entries take a miss and are dropped
  // the moment they exceed the budget.
  void MergeWithAdd(ColumnId cj, std::span<const ColumnId> row) {
    const uint32_t base_miss = cnt_[cj];
    const int64_t budget = maxmis_[cj];
    if (use_vector_) {
      VectorAddMerge(cj, row, base_miss, ClampBudget(budget));
      return;
    }
    const auto accept_new = [this, cj](ColumnId ck) {
      return Qualifies(ck, cj);
    };
    const auto keep_on_hit = [](ColumnId, uint32_t) { return true; };
    const auto keep_on_miss = [budget](ColumnId, uint32_t new_miss) {
      return static_cast<int64_t>(new_miss) <= budget;
    };
    if (kernel_ == MergeKernel::kLegacy) {
      LegacyAddMerge(table_, cj, row, base_miss, scratch_, accept_new,
                     keep_on_hit, keep_on_miss);
    } else {
      InPlaceAddMerge(table_, cj, row, base_miss, scratch_, kernel_,
                      accept_new, keep_on_hit, keep_on_miss);
    }
  }

  // Case cnt(cj) > maxmis(cj): no additions are possible any more; only
  // count misses against existing candidates.
  void MergeMissOnly(ColumnId cj, std::span<const ColumnId> row) {
    const int64_t budget = maxmis_[cj];
    if (use_vector_) {
      const MissCounterTable::MutableList list = table_.Mutable(cj);
      if (list.size == 0) return;
      const size_t w = kernels::ImpVectorSweep(
          list.cand, list.miss, list.size, scratch_.row_mask.data(),
          ClampBudget(budget), table_.Sidecar(cj));
      if (w != list.size) table_.SetSize(cj, w);
      return;
    }
    const auto keep_on_hit = [](ColumnId, uint32_t) { return true; };
    const auto keep_on_miss = [budget](ColumnId, uint32_t new_miss) {
      return static_cast<int64_t>(new_miss) <= budget;
    };
    if (kernel_ == MergeKernel::kLegacy) {
      LegacyMissMerge(table_, cj, row, scratch_, keep_on_hit, keep_on_miss);
    } else {
      InPlaceMissMerge(table_, cj, row, scratch_, kernel_, keep_on_hit,
                       keep_on_miss);
    }
  }

  // A per-column miss budget as the unsigned 32-bit value the vector
  // sweep compares against. Negative budgets (possible only while no
  // list exists) clamp to 0: a miss then always kills, a hit never does
  // — the same decisions the int64 comparison makes.
  static uint32_t ClampBudget(int64_t budget) {
    if (budget < 0) return 0;
    if (budget > static_cast<int64_t>(UINT32_MAX)) return UINT32_MAX;
    return static_cast<uint32_t>(budget);
  }

  // MergeWithAdd on the block-typed vector path: the entry sweep runs in
  // kernels::ImpVectorSweep and joiners are found with the per-list
  // presence sidecar instead of the row-mask 1 -> 2 flagging (gathers
  // can't scatter the flag back). An implication entry never dies on a
  // hit, so a row column is a joiner iff its presence bit is clear.
  void VectorAddMerge(ColumnId cj, std::span<const ColumnId> row,
                      uint32_t base_miss, uint32_t budget) {
    if (!table_.HasList(cj)) {
      scratch_.fresh.clear();
      for (const ColumnId ck : row) {
        if (ck != cj && Qualifies(ck, cj)) scratch_.fresh.push_back(ck);
      }
      if (scratch_.fresh.empty()) return;
      table_.Create(cj);
      const MissCounterTable::MutableList list =
          table_.Reserve(cj, scratch_.fresh.size());
      uint64_t* sc = table_.Sidecar(cj);
      for (size_t k = 0; k < scratch_.fresh.size(); ++k) {
        list.cand[k] = scratch_.fresh[k];
        list.miss[k] = base_miss;
        MissCounterTable::SidecarSetBit(sc, scratch_.fresh[k]);
      }
      table_.SetSize(cj, scratch_.fresh.size());
      return;
    }
    const MissCounterTable::MutableList list = table_.Mutable(cj);
    uint64_t* sc = table_.Sidecar(cj);
    const size_t w =
        kernels::ImpVectorSweep(list.cand, list.miss, list.size,
                                scratch_.row_mask.data(), budget, sc);
    // Joiners word-wise: row columns whose presence bit is clear. cj's
    // own bit is pending too (a column never lists itself) — skipped by
    // the cr != cj test.
    scratch_.fresh.clear();
    const uint64_t* rb = scratch_.row_bits.data();
    const size_t words = scratch_.row_bits.size();
    for (size_t wd = 0; wd < words; ++wd) {
      uint64_t pending = rb[wd] & ~sc[wd];
      while (pending != 0) {
        const ColumnId cr = static_cast<ColumnId>(
            (wd << 6) + static_cast<unsigned>(__builtin_ctzll(pending)));
        pending &= pending - 1;
        if (cr != cj && Qualifies(cr, cj)) scratch_.fresh.push_back(cr);
      }
    }
    if (scratch_.fresh.empty()) {
      if (w != list.size) table_.SetSize(cj, w);
      return;
    }
    for (const ColumnId f : scratch_.fresh) {
      MissCounterTable::SidecarSetBit(sc, f);
    }
    MergeJoinersFromBack(table_, cj, w, scratch_.fresh, base_miss);
  }

  // cnt(cj) == ones(cj): every surviving candidate is a rule (its miss
  // count is final and within budget).
  void FlushColumn(ColumnId cj) {
    const auto list = table_.List(cj);
    for (size_t j = 0; j < list.size; ++j) {
      EmitRule(cj, list.cand[j], list.miss[j]);
    }
    table_.Release(cj);
  }

  void EmitRule(ColumnId lhs, ColumnId rhs, uint32_t misses) {
    if (!in_.emit_zero_miss && misses == 0) return;
    out_->Add(ImplicationRule{lhs, rhs, ones_[lhs], misses});
  }

  // Delivers one progress sample; returns false when the callback asks
  // to cancel.
  bool ReportProgress(const ObserveContext& obs, size_t idx, size_t n) {
    ProgressUpdate update;
    update.phase = in_.phase;
    update.rows_processed = idx;
    update.total_rows = n;
    update.live_candidates = table_.total_entries();
    update.counter_bytes = table_.bytes();
    update.shard = obs.shard;
    return obs.progress(update);
  }

  void RecordHistory() {
    if (in_.memory_history != nullptr) {
      // Per-row *peak*, not end-of-row value: candidate lists can grow
      // and then shrink within one row, and the exported invariant
      // max(memory_history) == peak_counter_bytes must hold exactly.
      in_.memory_history->push_back(in_.tracker->TakeIntervalPeak());
    }
    if (in_.candidate_history != nullptr) {
      // Same contract for candidates: the intra-row peak, so
      // max(candidate_history) == peak_candidates holds exactly.
      in_.candidate_history->push_back(table_.TakeEntriesIntervalPeak());
    }
  }

  // Algorithm 4.1. `start` is the index (into the order) of the first row
  // the base scan did not process.
  void RunBitmapPhases(size_t start) {
    const size_t n = in_.order.size();
    const size_t tn = n - start;
    // Materialize the tail rows (active columns only) and per-column
    // posting sets over them. The tail indices are appended ascending, so
    // each container seals itself into its cheapest chunk format.
    std::vector<std::vector<ColumnId>> tail;
    tail.reserve(tn);
    std::vector<int32_t> bm_index(m_.num_columns(), -1);
    std::vector<PostingContainer> bitmaps;
    for (size_t t = 0; t < tn; ++t) {
      const auto row = FilteredRow(in_.order[start + t]);
      tail.emplace_back(row.begin(), row.end());
      for (ColumnId c : row) {
        if (bm_index[c] < 0) {
          bm_index[c] = static_cast<int32_t>(bitmaps.size());
          bitmaps.emplace_back();
        }
        bitmaps[bm_index[c]].Append(static_cast<uint32_t>(t));
      }
    }
    for (PostingContainer& p : bitmaps) p.Optimize();

    const ColumnId num_cols = m_.num_columns();
    // Phase 1: columns that can no longer gain candidates. Finish their
    // existing candidates by exact bitmap miss-counting.
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (!table_.HasList(c)) continue;
      if (static_cast<int64_t>(cnt_[c]) <= maxmis_[c]) continue;
      const PostingContainer* bj =
          bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
      const auto list = table_.List(c);
      for (size_t e = 0; e < list.size; ++e) {
        size_t extra = 0;
        if (bj != nullptr) {
          extra = bm_index[list.cand[e]] >= 0
                      ? bj->AndNotCount(bitmaps[bm_index[list.cand[e]]])
                      : bj->cardinality();
        }
        const int64_t total = static_cast<int64_t>(list.miss[e]) + extra;
        if (total <= maxmis_[c]) {
          EmitRule(c, list.cand[e], static_cast<uint32_t>(total));
        }
      }
      table_.Release(c);
    }

    // Phase 2: columns that may still gain candidates. Count hits over
    // the tail (seeded with the exact head hits of listed candidates) and
    // test every qualifying partner. Hit counts live in a dense
    // per-column array with a touched list for O(touched) reset — the
    // tail is small (<= bitmap_max_remaining_rows), so the sparse walk
    // dominates and a hash map would only add overhead.
    std::vector<uint32_t> hits(num_cols, 0);
    std::vector<uint8_t> seen(num_cols, 0);
    std::vector<ColumnId> touched;
    const auto touch = [&](ColumnId ck) {
      if (!seen[ck]) {
        seen[ck] = 1;
        touched.push_back(ck);
      }
    };
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (!active_[c] || ones_[c] == 0 || !LhsOk(c)) continue;
      if (static_cast<int64_t>(cnt_[c]) > maxmis_[c]) continue;
      touched.clear();
      if (table_.HasList(c)) {
        const auto list = table_.List(c);
        for (size_t e = 0; e < list.size; ++e) {
          touch(list.cand[e]);
          hits[list.cand[e]] = cnt_[c] - list.miss[e];
        }
      }
      if (bm_index[c] >= 0) {
        bitmaps[bm_index[c]].ForEach([&](uint32_t t) {
          for (ColumnId ck : tail[t]) {
            if (ck != c) {
              touch(ck);
              ++hits[ck];
            }
          }
        });
      }
      const int64_t min_hits = static_cast<int64_t>(ones_[c]) - maxmis_[c];
      for (ColumnId ck : touched) {
        const uint32_t h = hits[ck];
        seen[ck] = 0;
        hits[ck] = 0;
        if (!Qualifies(ck, c)) continue;
        if (static_cast<int64_t>(h) >= min_hits) {
          EmitRule(c, ck, ones_[c] - h);
        }
      }
      if (table_.HasList(c)) table_.Release(c);
    }
  }

  const ImplicationPassInput& in_;
  ImplicationRuleSet* out_;
  const BinaryMatrix& m_;
  const std::vector<uint32_t>& ones_;
  const std::vector<int64_t>& maxmis_;
  const std::vector<uint8_t>& active_;
  const DmcPolicy& policy_;
  const MergeKernel kernel_;
  bool all_active_ = false;
  bool use_vector_ = false;
  std::vector<uint32_t> cnt_;
  MissCounterTable table_;
  std::vector<ColumnId> scratch_row_;
  MergeScratch scratch_;
};

}  // namespace

ImplicationPassResult RunImplicationPass(const ImplicationPassInput& input,
                                         ImplicationRuleSet* out) {
  DMC_CHECK(input.matrix != nullptr);
  DMC_CHECK(input.max_misses != nullptr);
  DMC_CHECK(input.active != nullptr);
  DMC_CHECK(input.policy != nullptr);
  DMC_CHECK(input.tracker != nullptr);
  DMC_CHECK(out != nullptr);
  DMC_CHECK_EQ(input.max_misses->size(), input.matrix->num_columns());
  DMC_CHECK_EQ(input.active->size(), input.matrix->num_columns());
  ImplicationScan scan(input, out);
  return scan.Run();
}

}  // namespace dmc
