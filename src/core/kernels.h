// Hot-path sorted-set kernels for the DMC scan.
//
// The per-row cost of DMC is "merge cand(cj) with the row" for every
// 1-column cj of every row (§4.4), so this file concentrates everything
// that loop touches:
//
//   * MarkHits / IntersectCount — sorted-set intersection primitives with
//     a scalar two-pointer reference and an AVX2 block-compare variant
//     behind runtime dispatch (ResolveKernel),
//   * InPlaceMissMerge — the cnt > maxmis fast path: mark hits, bump
//     misses, compact only when entries die; no rebuild, no copy,
//   * InPlaceAddMerge — the cnt <= maxmis path with an append fast path
//     for the common "row tail extends the list" case,
//   * LegacyAddMerge / LegacyMissMerge — the pre-arena rebuild-into-
//     scratch merges, kept selectable (DmcPolicy::kernel = kLegacy) as
//     the baseline the differential parity tests compare against.
//
// All kernels and both merge strategies produce byte-identical candidate
// lists and issue exactly one net MemoryTracker adjustment per merge, so
// rule sets, peak_counter_bytes and the per-row history samples are
// invariant under DmcPolicy::kernel.
//
// The pass-specific policy (who qualifies, who survives a hit or a miss)
// is injected through three predicates so the four miners (batch/stream ×
// imp/sim) share one implementation:
//   accept_new(ck)        — may ck join cj's list on this row?
//   keep_on_hit(ck, m)    — does an entry that hit survive? (sim's §5.2
//                           maximum-hits pruning can drop it)
//   keep_on_miss(ck, m')  — does an entry survive its bumped miss m'?

#ifndef DMC_CORE_KERNELS_H_
#define DMC_CORE_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "core/miss_counter_table.h"
#include "matrix/binary_matrix.h"

namespace dmc {

/// True when the AVX2 intersection kernel can run on this CPU.
bool SimdKernelAvailable();

/// Collapses kAuto to the best concrete kernel for this CPU and kSimd to
/// kScalar when AVX2 is unavailable; kLegacy and kScalar pass through.
MergeKernel ResolveKernel(MergeKernel requested);

/// Stable lower-case name ("auto", "legacy", "scalar", "simd") for stats
/// export and bench labels.
const char* KernelName(MergeKernel k);

namespace kernels {

/// Limits under which the block-typed vector merge sweeps below are
/// enabled: the presence sidecar stays one cache-friendly bitset
/// (<= 8 KiB) per live list, and every intermediate of the 8-wide epi32
/// arithmetic provably fits in int32.
inline constexpr uint32_t kVectorSweepMaxColumns = 65536;
inline constexpr uint32_t kVectorSweepMaxRows = uint32_t{1} << 30;

/// True when ImpVectorSweep / SimVectorSweep run their AVX2 bodies on
/// this CPU (gather + permute-compress). When false the portable scalar
/// bodies run instead — same results, no reason to prefer them over the
/// generic merges.
bool VectorSweepAvailable();

/// The implication-pass entry sweep (keep_on_hit = always,
/// keep_on_miss = new_miss <= budget), 8 entries per step: gather the
/// row-mask byte per candidate, bump misses, drop over-budget entries
/// with a permute-compress, and clear the presence-sidecar bit of every
/// death (implication deaths are always miss-deaths). Returns the new
/// list size; the caller commits it with SetSize. Byte-identical to the
/// scalar predicates in core/dmc_base.cc.
size_t ImpVectorSweep(ColumnId* cand, uint32_t* miss, size_t n,
                      const uint8_t* row_mask, uint32_t budget,
                      uint64_t* sidecar);

/// Per-merge constants for the similarity entry sweep. `ones`, `cnt` and
/// `s_ones` are the scan's dense per-column arrays (gathered per entry);
/// the scalars are the §5.2 maximum-hits bound inputs for the
/// list-keeping column cj, with rem_j = ones_j - cnt_j.
struct SimSweepParams {
  /// rem[c] = ones[c] - cnt[c], maintained incrementally by the scan
  /// (cnt is stable during a row's merges), so the sweep gathers one
  /// array instead of ones and cnt separately.
  const int32_t* rem = nullptr;
  const double* s_ones = nullptr;  // s * ones[c], precomputed by the scan
  int32_t ones_j = 0;
  int32_t rem_j = 0;
  double one_plus_s = 0.0;
  double budget_eps = 0.0;
};

/// The similarity-pass entry sweep with §5.2 maximum-hits pruning, 8
/// entries per step. For each candidate ck with old miss count m and row
/// hit h, the unified survival argument is
///   arg = rem_j + m - min(rem_j - 1 + h, rem_k)
/// (equal to ones_j - best_hits of SurvivesMaxHitsOnHit/OnMiss), tested
/// as one_plus_s * arg <= ones_j - s_ones[ck] + budget_eps with the
/// exact operand values and operation order of the scalar
/// WithinPairBudget, so the float decisions are bit-identical. Deaths on
/// a miss clear their sidecar bit immediately; deaths on a hit are
/// appended to `dead_hits` so the caller can clear them after the joiner
/// row-walk (a dying hit was in the list on this row and must not
/// rejoin). Returns the new list size.
size_t SimVectorSweep(ColumnId* cand, uint32_t* miss, size_t n,
                      const uint8_t* row_mask, const SimSweepParams& p,
                      uint64_t* sidecar, std::vector<ColumnId>* dead_hits);

/// Sets hit[j] = 1 iff list[j] is in row, else 0, for j in [0, n). Both
/// inputs are strictly ascending. `kernel` selects the intersection
/// implementation (kLegacy counts as kScalar here).
void MarkHits(const ColumnId* list, size_t n, const ColumnId* row, size_t m,
              uint8_t* hit, MergeKernel kernel);

/// |a ∩ b| for two strictly ascending id arrays.
size_t IntersectCount(const ColumnId* a, size_t na, const ColumnId* b,
                      size_t nb, MergeKernel kernel);

}  // namespace kernels

/// Reusable merge scratch; one per scan object, so the hot loop never
/// allocates once the vectors reach steady-state capacity.
struct MergeScratch {
  std::vector<uint8_t> hit;     // per-entry hit marks
  std::vector<ColumnId> fresh;  // row columns joining the list
  std::vector<ColumnId> cand;   // rebuild staging (legacy)
  std::vector<uint32_t> miss;
  /// Dense membership mask of the current row, shared by every merge of
  /// that row (kSimd paths): row_mask[c] == 1 while c is in the row, 2
  /// transiently while a hit is being consumed mid-merge, 0 otherwise.
  /// Sized num_columns + 3 so the vector sweeps' 32-bit gathers may read
  /// up to 3 bytes past the last column.
  std::vector<uint8_t> row_mask;
  std::vector<ColumnId> marked;  // columns set in row_mask (for O(|row|) reset)
  /// Word bitmap of the current row (same membership as row_mask). The
  /// vector add-merges AND-NOT it against a list's presence sidecar to
  /// find joiners word-wise instead of testing every row column.
  std::vector<uint64_t> row_bits;
  /// Candidates that died on a hit during a SimVectorSweep; their sidecar
  /// bits are cleared only after the joiner row-walk.
  std::vector<ColumnId> dead_hits;

  /// Installs `row` as the current row. Scans using MergeKernel::kSimd
  /// must call this once per row before merging; cost is
  /// O(|previous row| + |row|), amortized across every column merge of
  /// the row.
  void BeginRow(std::span<const ColumnId> row, size_t num_columns) {
    if (row_mask.size() < num_columns + 3) row_mask.assign(num_columns + 3, 0);
    if (row_bits.size() < (num_columns + 63) / 64) {
      row_bits.assign((num_columns + 63) / 64, 0);
    }
    // Word-granular clear: every bit of the previous row lives in a word
    // that held some marked column, so clearing those words clears all.
    for (const ColumnId c : marked) {
      row_mask[c] = 0;
      row_bits[c >> 6] = 0;
    }
    marked.assign(row.begin(), row.end());
    for (const ColumnId c : row) {
      row_mask[c] = 1;
      row_bits[c >> 6] |= uint64_t{1} << (c & 63);
    }
  }
};

/// Merges `fresh` (strictly ascending, disjoint from the surviving
/// entries) into cj's list from the back, after a sweep has compacted
/// the survivors to [0, w). One Reserve + one SetSize, so every merge
/// strategy issues the same net accounting adjustment. dst never
/// overtakes the surviving source slot, so the merge is safe in place.
inline void MergeJoinersFromBack(MissCounterTable& table, ColumnId cj,
                                 size_t w,
                                 const std::vector<ColumnId>& fresh,
                                 uint32_t base_miss) {
  const size_t fn = fresh.size();
  const MissCounterTable::MutableList grown = table.Reserve(cj, w + fn);
  size_t a = w, b = fn, dst = w + fn;
  while (b > 0) {
    if (a > 0 && grown.cand[a - 1] > fresh[b - 1]) {
      --dst;
      --a;
      grown.cand[dst] = grown.cand[a];
      grown.miss[dst] = grown.miss[a];
    } else {
      --dst;
      --b;
      grown.cand[dst] = fresh[b];
      grown.miss[dst] = base_miss;
    }
  }
  table.SetSize(cj, w + fn);
}

/// The cnt > maxmis merge: no additions are possible, so the list is
/// updated strictly in place. The kSimd kernel tests each entry against
/// the row's dense membership mask (BeginRow — O(1) per entry, no
/// merge-join); the scalar kernel fuses the search and the apply into
/// one two-pointer pass. Both bump misses and compact only past the
/// first death — no rebuild, no copy. The caller guarantees HasList(cj);
/// an empty list is a no-op.
template <typename KeepOnHit, typename KeepOnMiss>
void InPlaceMissMerge(MissCounterTable& table, ColumnId cj,
                      std::span<const ColumnId> row, MergeScratch& scratch,
                      MergeKernel kernel, KeepOnHit keep_on_hit,
                      KeepOnMiss keep_on_miss) {
  const MissCounterTable::MutableList list = table.Mutable(cj);
  if (list.size == 0) return;
  size_t w = 0;
  if (kernel == MergeKernel::kSimd) {
    // Optimistic sweep: entries die at most once in their lifetime, so
    // the common row drops nothing. Update misses in place (no element
    // moves) until the first death — that branch predicts near-perfectly
    // — and only then fall into the compacting loop for the tail.
    // __restrict: the byte mask would otherwise alias the uint32 miss
    // stores (unsigned char aliases everything) and force reloads.
    const uint8_t* __restrict mask = scratch.row_mask.data();
    size_t j = 0;
    for (; j < list.size; ++j) {
      const ColumnId ck = list.cand[j];
      const uint8_t hit = mask[ck] != 0 ? 1 : 0;
      const uint32_t old_miss = list.miss[j];
      const uint32_t new_miss = old_miss + 1u - hit;
      list.miss[j] = new_miss;
      const bool keep =
          hit != 0 ? keep_on_hit(ck, old_miss) : keep_on_miss(ck, new_miss);
      if (!keep) break;
    }
    w = j;
    for (++j; j < list.size; ++j) {
      const ColumnId ck = list.cand[j];
      const uint8_t hit = mask[ck] != 0 ? 1 : 0;
      const uint32_t old_miss = list.miss[j];
      const uint32_t new_miss = old_miss + 1u - hit;
      const bool keep =
          hit != 0 ? keep_on_hit(ck, old_miss) : keep_on_miss(ck, new_miss);
      if (!keep) continue;
      list.cand[w] = ck;
      list.miss[w] = new_miss;
      ++w;
    }
  } else {
    size_t i = 0;
    for (size_t j = 0; j < list.size; ++j) {
      const ColumnId ck = list.cand[j];
      while (i < row.size() && row[i] < ck) ++i;
      if (i < row.size() && row[i] == ck) {
        ++i;
        if (!keep_on_hit(ck, list.miss[j])) continue;
        if (w != j) {
          list.cand[w] = ck;
          list.miss[w] = list.miss[j];
        }
        ++w;
      } else {
        const uint32_t new_miss = list.miss[j] + 1;
        if (!keep_on_miss(ck, new_miss)) continue;
        list.cand[w] = ck;
        list.miss[w] = new_miss;
        ++w;
      }
    }
  }
  if (w != list.size) table.SetSize(cj, w);
}

/// The cnt <= maxmis merge: existing entries take hits/misses exactly as
/// in InPlaceMissMerge, and accepted row-only columns join with
/// miss = base_miss. One fused two-pointer sweep bumps/compacts the
/// survivors in place (write head w never overtakes read head j) while
/// collecting the joining columns; joiners are then merged in from the
/// back after a single Reserve, so the common no-joiner row touches each
/// entry exactly once and an interleaved join costs one bounded backward
/// merge instead of a full rebuild. The kSimd kernel replaces the
/// two-pointer sweep with the row's dense membership mask (BeginRow):
/// hits are O(1) byte tests, consumed hits are flagged in the mask, and
/// one walk over the row afterwards yields the joiners and restores the
/// mask. The list is created lazily: a merge that would leave it empty
/// does not create it and pays no kPerListOverheadBytes (an
/// already-created list that empties out stays live, as before).
template <typename AcceptNew, typename KeepOnHit, typename KeepOnMiss>
void InPlaceAddMerge(MissCounterTable& table, ColumnId cj,
                     std::span<const ColumnId> row, uint32_t base_miss,
                     MergeScratch& scratch, MergeKernel kernel,
                     AcceptNew accept_new, KeepOnHit keep_on_hit,
                     KeepOnMiss keep_on_miss) {
  if (!table.HasList(cj)) {
    scratch.fresh.clear();
    for (const ColumnId ck : row) {
      if (ck != cj && accept_new(ck)) scratch.fresh.push_back(ck);
    }
    if (scratch.fresh.empty()) return;
    table.Create(cj);
    const MissCounterTable::MutableList list =
        table.Reserve(cj, scratch.fresh.size());
    for (size_t k = 0; k < scratch.fresh.size(); ++k) {
      list.cand[k] = scratch.fresh[k];
      list.miss[k] = base_miss;
    }
    table.SetSize(cj, scratch.fresh.size());
    return;
  }

  const MissCounterTable::MutableList list = table.Mutable(cj);
  scratch.fresh.clear();
  size_t w = 0;
  if (kernel == MergeKernel::kSimd) {
    // Optimistic mask sweep (see InPlaceMissMerge): each entry is an O(1)
    // membership test and misses are bumped in place with no element
    // moves until the first death. A consumed hit is flagged (1 -> 2,
    // written as mask * 2 since a missed entry's mask is already 0) so
    // the row walk below can tell joiners (still 1) from already-listed
    // columns, then restores the flags. A dying hit is flagged too: it
    // was in the list on this row, so it must not rejoin as fresh.
    // __restrict as in InPlaceMissMerge: keep the byte mask disjoint
    // from the uint32 miss stores for the alias analyzer.
    uint8_t* __restrict mask = scratch.row_mask.data();
    size_t j = 0;
    for (; j < list.size; ++j) {
      const ColumnId ck = list.cand[j];
      const uint8_t hit = mask[ck];  // 0 or 1: entries are unique
      mask[ck] = static_cast<uint8_t>(hit * 2);
      const uint32_t old_miss = list.miss[j];
      const uint32_t new_miss = old_miss + 1u - hit;
      list.miss[j] = new_miss;
      const bool keep =
          hit != 0 ? keep_on_hit(ck, old_miss) : keep_on_miss(ck, new_miss);
      if (!keep) break;
    }
    w = j;
    for (++j; j < list.size; ++j) {
      const ColumnId ck = list.cand[j];
      const uint8_t hit = mask[ck];
      mask[ck] = static_cast<uint8_t>(hit * 2);
      const uint32_t old_miss = list.miss[j];
      const uint32_t new_miss = old_miss + 1u - hit;
      const bool keep =
          hit != 0 ? keep_on_hit(ck, old_miss) : keep_on_miss(ck, new_miss);
      if (!keep) continue;
      list.cand[w] = ck;
      list.miss[w] = new_miss;
      ++w;
    }
    for (const ColumnId cr : row) {
      if (mask[cr] == 2) {
        mask[cr] = 1;
      } else if (cr != cj && accept_new(cr)) {
        scratch.fresh.push_back(cr);
      }
    }
  } else {
    // One flat three-way merge loop (row-only / list-only / both). The
    // flat shape predicts measurably better than a nested row-advance
    // loop and is what makes this path beat the rebuild baseline.
    size_t i = 0, j = 0;
    while (i < row.size() || j < list.size) {
      if (j >= list.size || (i < row.size() && row[i] < list.cand[j])) {
        // Row-only column: a join candidate.
        const ColumnId cr = row[i++];
        if (cr != cj && accept_new(cr)) scratch.fresh.push_back(cr);
      } else if (i >= row.size() || list.cand[j] < row[i]) {
        // List-only entry: a miss.
        const ColumnId ck = list.cand[j];
        const uint32_t new_miss = list.miss[j] + 1;
        ++j;
        if (!keep_on_miss(ck, new_miss)) continue;
        list.cand[w] = ck;
        list.miss[w] = new_miss;
        ++w;
      } else {
        // In both: a hit.
        const ColumnId ck = list.cand[j];
        const uint32_t old_miss = list.miss[j];
        ++i;
        ++j;
        if (!keep_on_hit(ck, old_miss)) continue;
        if (w != j - 1) {
          list.cand[w] = ck;
          list.miss[w] = old_miss;
        }
        ++w;
      }
    }
  }

  if (scratch.fresh.empty()) {
    if (w != list.size) table.SetSize(cj, w);
    return;
  }
  // Reserve preserves the survivors in [0, w); entries past the last
  // joiner are already in position.
  MergeJoinersFromBack(table, cj, w, scratch.fresh, base_miss);
}

/// The pre-arena cnt <= maxmis merge: one linear pass rebuilds the whole
/// list into scratch and copies it back, every row. Semantically
/// identical to InPlaceAddMerge (including lazy creation); kept as the
/// differential baseline.
template <typename AcceptNew, typename KeepOnHit, typename KeepOnMiss>
void LegacyAddMerge(MissCounterTable& table, ColumnId cj,
                    std::span<const ColumnId> row, uint32_t base_miss,
                    MergeScratch& scratch, AcceptNew accept_new,
                    KeepOnHit keep_on_hit, KeepOnMiss keep_on_miss) {
  const bool had_list = table.HasList(cj);
  const MissCounterTable::ListView list =
      had_list ? table.List(cj) : MissCounterTable::ListView{};
  scratch.cand.clear();
  scratch.miss.clear();
  size_t i = 0, j = 0;
  while (i < row.size() || j < list.size) {
    if (j >= list.size || (i < row.size() && row[i] < list.cand[j])) {
      const ColumnId ck = row[i++];
      if (ck != cj && accept_new(ck)) {
        scratch.cand.push_back(ck);
        scratch.miss.push_back(base_miss);
      }
    } else if (i >= row.size() || list.cand[j] < row[i]) {
      const ColumnId ck = list.cand[j];
      const uint32_t new_miss = list.miss[j] + 1;
      ++j;
      if (keep_on_miss(ck, new_miss)) {
        scratch.cand.push_back(ck);
        scratch.miss.push_back(new_miss);
      }
    } else {  // in both: a hit
      const ColumnId ck = list.cand[j];
      const uint32_t old_miss = list.miss[j];
      ++i;
      ++j;
      if (keep_on_hit(ck, old_miss)) {
        scratch.cand.push_back(ck);
        scratch.miss.push_back(old_miss);
      }
    }
  }
  if (!had_list) {
    if (scratch.cand.empty()) return;
    table.Create(cj);
  }
  table.Assign(cj, scratch.cand.data(), scratch.miss.data(),
               scratch.cand.size());
}

/// The pre-arena cnt > maxmis merge (rebuild into scratch, copy back).
/// Caller guarantees HasList(cj).
template <typename KeepOnHit, typename KeepOnMiss>
void LegacyMissMerge(MissCounterTable& table, ColumnId cj,
                     std::span<const ColumnId> row, MergeScratch& scratch,
                     KeepOnHit keep_on_hit, KeepOnMiss keep_on_miss) {
  const MissCounterTable::ListView list = table.List(cj);
  if (list.empty()) return;
  scratch.cand.clear();
  scratch.miss.clear();
  size_t i = 0;
  for (size_t j = 0; j < list.size; ++j) {
    const ColumnId ck = list.cand[j];
    while (i < row.size() && row[i] < ck) ++i;
    if (i < row.size() && row[i] == ck) {
      if (!keep_on_hit(ck, list.miss[j])) continue;
      scratch.cand.push_back(ck);
      scratch.miss.push_back(list.miss[j]);
    } else {
      const uint32_t new_miss = list.miss[j] + 1;
      if (!keep_on_miss(ck, new_miss)) continue;
      scratch.cand.push_back(ck);
      scratch.miss.push_back(new_miss);
    }
  }
  table.Assign(cj, scratch.cand.data(), scratch.miss.data(),
               scratch.cand.size());
}

}  // namespace dmc

#endif  // DMC_CORE_KERNELS_H_
