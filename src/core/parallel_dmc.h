// Parallel DMC — the divide-and-conquer extension the paper's conclusion
// calls for ("a parallel algorithm based on a divide-and-conquer
// technique, such as FDM for a-priori, is necessary").
//
// Columns are partitioned into shards balanced by 1-count; each worker
// thread runs the full DMC pipeline over the shared (read-only) matrix,
// owning candidate lists only for its shard's columns as antecedents.
// The shard outputs are disjoint (a rule belongs to its antecedent's
// shard), so the union is exactly the serial result — the same guarantee
// the property tests enforce.

#ifndef DMC_CORE_PARALLEL_DMC_H_
#define DMC_CORE_PARALLEL_DMC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dmc_imp.h"
#include "core/dmc_sim.h"
#include "core/mining_stats.h"

namespace dmc {

struct ParallelOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;
  /// In-thread re-attempts of a shard whose mining fails with a
  /// transient error (kIOError / kResourceExhausted) before containment
  /// escalates. Cancellation is never retried.
  uint32_t max_shard_retries = 2;
  /// After retries are exhausted, failed shards are re-mined one at a
  /// time on the calling thread (degraded mode: slower, but a shard
  /// that failed under concurrent memory pressure usually fits alone).
  /// When false, the first shard failure fails the whole run.
  bool degrade_to_serial = true;
};

/// Aggregate statistics of a parallel run.
struct ParallelMiningStats {
  /// Wall-clock time of the whole parallel run.
  double total_seconds = 0.0;
  /// Slowest single shard (the critical path).
  double max_shard_seconds = 0.0;
  /// Sum of per-shard times (the serial-equivalent work).
  double sum_shard_seconds = 0.0;
  /// Sum of per-shard counter-array peaks — an upper bound on the
  /// concurrent peak (shards run simultaneously).
  size_t sum_peak_counter_bytes = 0;
  /// Largest single shard's counter-array peak — the per-machine memory
  /// requirement in a distributed (FDM-style) deployment, which is the
  /// paper's motivation for parallelizing (§7: the News run outgrowing
  /// 256 MB).
  size_t max_peak_counter_bytes = 0;
  uint32_t shards = 0;
  /// Shards whose mining failed at least once (before any recovery).
  uint32_t shards_failed = 0;
  /// Total in-thread re-attempts across all shards.
  uint64_t shard_retries = 0;
  /// Shards recovered by the serial degradation pass.
  uint32_t shards_degraded = 0;
  /// Failure log: one "shard N: <status>" line per failed attempt, in
  /// observation order. Non-empty even when every shard eventually
  /// recovered, so operators can see contained faults.
  std::vector<std::string> shard_errors;
  /// Full per-shard engine stats, in shard order. The aggregate fields
  /// above are derived from these; exported under "per_shard" so the
  /// invariant tests can cross-check the aggregation.
  std::vector<MiningStats> per_shard;
};

/// Parallel MineImplications. Identical output to the serial engine.
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsParallel(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const ParallelOptions& parallel,
    ParallelMiningStats* stats = nullptr);

/// Parallel MineSimilarities. Identical output to the serial engine.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesParallel(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const ParallelOptions& parallel,
    ParallelMiningStats* stats = nullptr);

/// The shard assignment used by the miners, exposed for tests: columns
/// are sorted by descending 1-count and dealt greedily to the currently
/// lightest shard, balancing expected scan work.
std::vector<std::vector<uint8_t>> MakeColumnShards(
    const std::vector<uint32_t>& column_ones, uint32_t num_shards);

}  // namespace dmc

#endif  // DMC_CORE_PARALLEL_DMC_H_
