// Streaming DMC for implication rules: the same algorithm as the batch
// engine (DMC-base + DMC-bitmap), consuming rows one at a time — the form
// the paper actually ran against disk-resident data. Feed rows in the
// desired order (the external pipeline feeds density buckets sparsest
// first), then Finish().
//
// The batch engine remains the reference; the test suite pins this
// implementation to it exactly.

#ifndef DMC_CORE_STREAMING_IMP_H_
#define DMC_CORE_STREAMING_IMP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "core/kernels.h"
#include "core/mining_stats.h"
#include "core/miss_counter_table.h"
#include "core/thresholds.h"
#include "matrix/binary_matrix.h"
#include "observe/trace.h"
#include "rules/rule_set.h"
#include "util/memory_tracker.h"
#include "util/statusor.h"

namespace dmc {

/// One streamed pass (either the 100%-rule phase or the sub-100% phase).
/// Construction needs the pass-1 statistics: exact ones(c) and the total
/// number of rows that will be streamed.
class StreamingImplicationPass {
 public:
  struct Config {
    ColumnId num_columns = 0;
    /// Exact pass-1 counts; size num_columns.
    std::vector<uint32_t> ones;
    /// Rows that will be streamed (pass 1 row count).
    uint64_t total_rows = 0;
    /// Per-column miss budgets (MaxMissesForConfidence, or all zero for
    /// the 100% phase).
    std::vector<int64_t> max_misses;
    /// Active columns; empty = all active.
    std::vector<uint8_t> active;
    /// Antecedent shard: only columns with a nonzero entry own candidate
    /// lists and emit rules (rhs candidates still span every active
    /// column). Empty = all columns. The union of the rule sets produced
    /// by a partition of the columns equals the unsharded result exactly
    /// — the same invariant the batch engine's lhs_shard carries
    /// (dmc_base.cc), now available to multi-process workers that each
    /// stream the same bucket files.
    std::vector<uint8_t> lhs_shard;
    bool emit_zero_miss = true;
    size_t bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    /// Bitmap-fallback policy (row_order is ignored — the caller owns
    /// the order of the stream). Carries the ObserveContext hooks.
    DmcPolicy policy;
    /// Phase label for progress updates ("hundred_phase", "sub_phase").
    const char* phase = "pass";
  };

  explicit StreamingImplicationPass(Config config);

  StreamingImplicationPass(const StreamingImplicationPass&) = delete;
  StreamingImplicationPass& operator=(const StreamingImplicationPass&) =
      delete;

  /// Feeds the next row (sorted, deduplicated column ids — rows from
  /// BinaryMatrix or ReadMatrixText already satisfy this).
  void ProcessRow(std::span<const ColumnId> row);

  /// Rows consumed so far.
  uint64_t rows_seen() const { return rows_seen_; }

  /// Whether the pass has switched to tail-collection (DMC-bitmap) mode.
  bool bitmap_mode() const { return bitmap_mode_; }

  /// Whether the progress callback asked to cancel; once set, further
  /// rows are counted but not processed and Finish() returns
  /// Status(kCancelled).
  bool cancelled() const { return cancelled_; }

  /// Whether an injected fault hit the pass (failpoint site
  /// "streaming.imp.row"); once set, further rows are counted but not
  /// processed and Finish() returns the fault.
  bool faulted() const { return !fault_.ok(); }

  /// Current counter-array bytes.
  size_t counter_bytes() const { return table_.bytes(); }

  /// Completes the pass (runs the bitmap phases if triggered) and
  /// returns all discovered rules. Fails if fewer rows were streamed
  /// than promised.
  [[nodiscard]] StatusOr<ImplicationRuleSet> Finish();

  /// Peak counter bytes observed.
  size_t peak_counter_bytes() const { return tracker_.peak_bytes(); }

 private:
  bool LhsOk(ColumnId c) const {
    return config_.lhs_shard.empty() || config_.lhs_shard[c] != 0;
  }
  bool ActiveOk(ColumnId c) const {
    return config_.active.empty() || config_.active[c] != 0;
  }
  bool Qualifies(ColumnId ck, ColumnId cj) const;
  std::span<const ColumnId> FilteredRow(std::span<const ColumnId> row);
  void MergeWithAdd(ColumnId cj, std::span<const ColumnId> row);
  void MergeMissOnly(ColumnId cj, std::span<const ColumnId> row);
  void FlushColumn(ColumnId cj);
  void EmitRule(ColumnId lhs, ColumnId rhs, uint32_t misses);
  void RunBitmapPhases();

  Config config_;
  bool all_active_ = true;
  MergeKernel kernel_;
  MemoryTracker tracker_;
  MissCounterTable table_;
  std::vector<uint32_t> cnt_;
  uint64_t rows_seen_ = 0;
  bool bitmap_mode_ = false;
  bool finished_ = false;
  bool cancelled_ = false;
  Status fault_ = Status::OK();
  std::vector<std::vector<ColumnId>> tail_;
  ImplicationRuleSet out_;
  std::vector<ColumnId> scratch_row_;
  MergeScratch scratch_;
};

/// Convenience driver: streams the full DMC-imp pipeline (100% phase +
/// cutoff + sub-100% phase) over a row source that can be replayed. The
/// functor `replay(sink)` must invoke `sink(std::span<const ColumnId>)`
/// once per row, in the same order on every call; it is invoked once per
/// phase (the paper's implementation likewise re-reads the bucketed data
/// for each phase). `lhs_shard` (optional) restricts antecedents to the
/// marked columns; the union over a partition of the columns is exactly
/// the unsharded rule set.
template <typename Replay>
[[nodiscard]] StatusOr<ImplicationRuleSet> StreamImplications(
    ColumnId num_columns, const std::vector<uint32_t>& ones,
    uint64_t total_rows, const ImplicationMiningOptions& options,
    Replay&& replay, const std::vector<uint8_t>* lhs_shard = nullptr) {
  if (!(options.min_confidence > 0.0) || options.min_confidence > 1.0) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  const double minconf = options.min_confidence;
  const bool run_hundred =
      options.policy.hundred_percent_phase || minconf == 1.0;
  ImplicationRuleSet out;

  if (run_hundred) {
    StreamingImplicationPass::Config cfg;
    cfg.num_columns = num_columns;
    cfg.ones = ones;
    cfg.total_rows = total_rows;
    cfg.max_misses.assign(num_columns, 0);
    cfg.active.resize(num_columns);
    for (ColumnId c = 0; c < num_columns; ++c) cfg.active[c] = ones[c] > 0;
    cfg.emit_zero_miss = true;
    cfg.bytes_per_entry = MissCounterTable::kEntryBytesIdOnly;
    if (lhs_shard != nullptr) cfg.lhs_shard = *lhs_shard;
    cfg.policy = options.policy;
    cfg.phase = "hundred_phase";
    StreamingImplicationPass pass(std::move(cfg));
    ScopedSpan span(options.policy.observe.trace, "stream_imp/hundred_phase",
                    options.policy.observe.trace_lane);
    replay([&pass](std::span<const ColumnId> row) { pass.ProcessRow(row); });
    auto rules = pass.Finish();
    if (!rules.ok()) return rules.status();
    for (const auto& r : *rules) out.Add(r);
  }

  if (minconf < 1.0) {
    StreamingImplicationPass::Config cfg;
    cfg.num_columns = num_columns;
    cfg.ones = ones;
    cfg.total_rows = total_rows;
    cfg.max_misses.resize(num_columns);
    cfg.active.resize(num_columns);
    for (ColumnId c = 0; c < num_columns; ++c) {
      cfg.max_misses[c] = MaxMissesForConfidence(ones[c], minconf);
      cfg.active[c] =
          ones[c] > 0 &&
          (!run_hundred || ColumnSurvivesConfidenceCutoff(ones[c], minconf));
    }
    cfg.emit_zero_miss = !run_hundred;
    cfg.bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    if (lhs_shard != nullptr) cfg.lhs_shard = *lhs_shard;
    cfg.policy = options.policy;
    cfg.phase = "sub_phase";
    StreamingImplicationPass pass(std::move(cfg));
    ScopedSpan span(options.policy.observe.trace, "stream_imp/sub_phase",
                    options.policy.observe.trace_lane);
    replay([&pass](std::span<const ColumnId> row) { pass.ProcessRow(row); });
    auto rules = pass.Finish();
    if (!rules.ok()) return rules.status();
    for (const auto& r : *rules) out.Add(r);
  }

  out.Canonicalize();
  return out;
}

}  // namespace dmc

#endif  // DMC_CORE_STREAMING_IMP_H_
