// DMC-imp (Algorithm 4.2): the complete implication-rule miner.
//
// Pipeline: pre-scan (ones(c) + row re-ordering) -> 100%-confidence phase
// with the §4.3 simplification -> column cutoff (sound form of step 3) ->
// sub-100% phase -> union. Both phases use DMC-base with the DMC-bitmap
// fallback.

#ifndef DMC_CORE_DMC_IMP_H_
#define DMC_CORE_DMC_IMP_H_

#include "core/dmc_options.h"
#include "core/mining_stats.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/statusor.h"

namespace dmc {

/// Finds ALL implication rules c_i => c_j with confidence >=
/// options.min_confidence, over pairs ordered sparser-to-denser (§2): no
/// false positives, no false negatives. Rules carry exact miss counts.
///
/// `stats`, when non-null, receives the phase/time/memory breakdown.
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplications(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    MiningStats* stats = nullptr);

/// Advanced: restricts rule antecedents to the columns marked in
/// `lhs_shard` (size num_columns). Unioning the outputs of a column
/// partition reproduces the unsharded result exactly — the building block
/// of the parallel divide-and-conquer miner (§7 future work; see
/// parallel_dmc.h).
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsSharded(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const std::vector<uint8_t>& lhs_shard, MiningStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_CORE_DMC_IMP_H_
