// DMC-sim (Algorithm 5.1): the complete similarity-pair miner.
//
// Pipeline: pre-scan -> identical-column phase (minsim = 1, which makes
// the pair budgets exactly the paper's step 2) -> column cutoff (sound
// form of step 3) -> sub-100% phase with column-density and maximum-hits
// pruning -> union.

#ifndef DMC_CORE_DMC_SIM_H_
#define DMC_CORE_DMC_SIM_H_

#include "core/dmc_options.h"
#include "core/mining_stats.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/statusor.h"

namespace dmc {

/// Finds ALL column pairs with similarity >= options.min_similarity, in
/// canonical orientation (sparser column first): no false positives, no
/// false negatives. Pairs carry exact intersection counts.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilarities(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    MiningStats* stats = nullptr);

/// Advanced: restricts the list-keeping (sparser) side of each pair to
/// the columns marked in `lhs_shard`; see MineImplicationsSharded.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesSharded(
    const BinaryMatrix& matrix, const SimilarityMiningOptions& options,
    const std::vector<uint8_t>& lhs_shard, MiningStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_CORE_DMC_SIM_H_
