#include "core/streaming_sim.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/kernels.h"
#include "observe/progress.h"
#include "postings/posting_container.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dmc {

StreamingSimilarityPass::StreamingSimilarityPass(Config config)
    : config_(std::move(config)),
      one_plus_s_(1.0 + config_.min_similarity),
      budget_eps_((1.0 + config_.min_similarity) * kThresholdEpsilon),
      kernel_(ResolveKernel(config_.policy.kernel)),
      table_(config_.num_columns, config_.bytes_per_entry, &tracker_),
      cnt_(config_.num_columns, 0) {
  DMC_CHECK_EQ(config_.ones.size(), config_.num_columns);
  if (!config_.lhs_shard.empty()) {
    DMC_CHECK_EQ(config_.lhs_shard.size(), config_.num_columns);
  }
  DMC_CHECK_GT(config_.min_similarity, 0.0);
  DMC_CHECK_LE(config_.min_similarity, 1.0);
  all_active_ =
      config_.active.empty() ||
      std::all_of(config_.active.begin(), config_.active.end(),
                  [](uint8_t a) { return a != 0; });
  col_budget_.resize(config_.num_columns);
  s_ones_.resize(config_.num_columns);
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    col_budget_[c] =
        ColumnMaxMissesForSimilarity(config_.ones[c], config_.min_similarity);
    s_ones_[c] =
        config_.min_similarity * static_cast<double>(config_.ones[c]);
  }
}

bool StreamingSimilarityPass::Qualifies(ColumnId ck, ColumnId cj) const {
  return config_.ones[ck] > config_.ones[cj] ||
         (config_.ones[ck] == config_.ones[cj] && ck > cj);
}

int64_t StreamingSimilarityPass::PairBudget(ColumnId ci,
                                            ColumnId ck) const {
  return MaxMissesForSimilarity(config_.ones[ci], config_.ones[ck],
                                config_.min_similarity);
}

// mis <= MaxMissesForSimilarity(a, ones(ck), s) in multiply form:
//   mis <= (a - s*b)/(1+s) + eps  <=>  (1+s)*mis <= a - s*b + (1+s)*eps,
// with s*b = s_ones_[ck] precomputed per pass. Hoists the per-entry
// floating divide (and floor) out of the merge predicates; the
// kThresholdEpsilon guard band (thresholds.h) is orders of magnitude
// wider than the rounding difference between the forms, so they decide
// identically.
bool StreamingSimilarityPass::WithinPairBudget(uint32_t a, ColumnId ck,
                                               int64_t mis) const {
  return one_plus_s_ * static_cast<double>(mis) <=
         static_cast<double>(a) - s_ones_[ck] + budget_eps_;
}

bool StreamingSimilarityPass::SurvivesMaxHitsOnHit(ColumnId cj, ColumnId ck,
                                                   uint32_t miss) const {
  const int64_t rem_j = static_cast<int64_t>(config_.ones[cj]) - cnt_[cj];
  const int64_t rem_k = static_cast<int64_t>(config_.ones[ck]) - cnt_[ck];
  const int64_t hits_so_far = static_cast<int64_t>(cnt_[cj]) - miss;
  const int64_t best_hits = hits_so_far + std::min(rem_j, rem_k);
  // best_hits >= MinHitsForSimilarity(a, b, s) <=> a - best_hits is
  // within the pair budget. Since best_hits <= a - miss, the floor
  // a - best_hits is >= miss, so this single test also subsumes the
  // plain pair-budget test of the current miss count.
  return WithinPairBudget(config_.ones[cj], ck,
                          static_cast<int64_t>(config_.ones[cj]) - best_hits);
}

bool StreamingSimilarityPass::SurvivesMaxHitsOnMiss(
    ColumnId cj, ColumnId ck, uint32_t new_miss) const {
  const int64_t rem_j =
      static_cast<int64_t>(config_.ones[cj]) - cnt_[cj] - 1;
  const int64_t rem_k = static_cast<int64_t>(config_.ones[ck]) - cnt_[ck];
  const int64_t hits_so_far = static_cast<int64_t>(cnt_[cj]) -
                              (static_cast<int64_t>(new_miss) - 1);
  const int64_t best_hits = hits_so_far + std::min(rem_j, rem_k);
  // The floor a - best_hits is >= new_miss here (rem_j excludes the
  // current row), so this subsumes the pair-budget test of new_miss.
  return WithinPairBudget(config_.ones[cj], ck,
                          static_cast<int64_t>(config_.ones[cj]) - best_hits);
}

std::span<const ColumnId> StreamingSimilarityPass::FilteredRow(
    std::span<const ColumnId> row) {
  if (all_active_) return row;
  scratch_row_.clear();
  for (ColumnId c : row) {
    if (config_.active[c]) scratch_row_.push_back(c);
  }
  return scratch_row_;
}

void StreamingSimilarityPass::ProcessRow(std::span<const ColumnId> row) {
  DMC_CHECK(!finished_);
  DMC_CHECK_LT(rows_seen_, config_.total_rows);

  if (fault_.ok() && fail::Enabled()) {
    Status injected = fail::InjectStatus("streaming.sim.row");
    if (!injected.ok()) fault_ = std::move(injected);
  }
  if (!fault_.ok()) {
    // Same contract as cancellation: count rows so the replay loop stays
    // consistent, do no work; Finish() surfaces the fault.
    ++rows_seen_;
    return;
  }

  const ObserveContext& obs = config_.policy.observe;
  if (!cancelled_ && obs.has_progress()) {
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    if (rows_seen_ % interval == 0) {
      ProgressUpdate update;
      update.phase = config_.phase;
      update.rows_processed = rows_seen_;
      update.total_rows = config_.total_rows;
      update.live_candidates = table_.total_entries();
      update.counter_bytes = table_.bytes();
      update.shard = obs.shard;
      if (!obs.progress(update)) cancelled_ = true;
    }
  }
  if (cancelled_) {
    // Keep counting rows so the caller's replay loop stays consistent,
    // but stop doing any work; Finish() reports the cancellation.
    ++rows_seen_;
    return;
  }

  const auto filtered = FilteredRow(row);

  if (!bitmap_mode_ && config_.policy.bitmap_fallback &&
      config_.total_rows - rows_seen_ <=
          config_.policy.bitmap_max_remaining_rows &&
      table_.bytes() >= config_.policy.memory_threshold_bytes) {
    bitmap_mode_ = true;
  }

  if (bitmap_mode_) {
    tail_.emplace_back(filtered.begin(), filtered.end());
    ++rows_seen_;
    return;
  }

  if (kernel_ == MergeKernel::kSimd) {
    scratch_.BeginRow(filtered, config_.num_columns);
  }
  for (ColumnId cj : filtered) {
    if (!LhsOk(cj)) continue;  // not this shard's antecedent
    if (static_cast<int64_t>(cnt_[cj]) <= col_budget_[cj]) {
      MergeWithAdd(cj, filtered);
    } else if (table_.HasList(cj)) {
      MergeMissOnly(cj, filtered);
    }
  }
  for (ColumnId cj : filtered) {
    ++cnt_[cj];
    if (cnt_[cj] == config_.ones[cj] && table_.HasList(cj)) {
      FlushColumn(cj);
    }
  }
  ++rows_seen_;
}

void StreamingSimilarityPass::MergeWithAdd(ColumnId cj,
                                           std::span<const ColumnId> row) {
  const uint32_t base_miss = cnt_[cj];
  const auto accept_new = [this, cj, base_miss](ColumnId ck) {
    if (!Qualifies(ck, cj)) return false;
    // The max-hits test subsumes the density test (its miss floor is
    // >= base_miss), so each branch is a single budget comparison.
    if (config_.policy.max_hits_pruning) {
      return SurvivesMaxHitsOnHit(cj, ck, base_miss);
    }
    return !config_.policy.column_density_pruning ||
           WithinPairBudget(config_.ones[cj], ck, base_miss);
  };
  const auto keep_on_hit = [this, cj](ColumnId ck, uint32_t miss) {
    return !config_.policy.max_hits_pruning ||
           SurvivesMaxHitsOnHit(cj, ck, miss);
  };
  const auto keep_on_miss = [this, cj](ColumnId ck, uint32_t new_miss) {
    if (config_.policy.max_hits_pruning) {
      return SurvivesMaxHitsOnMiss(cj, ck, new_miss);
    }
    return WithinPairBudget(config_.ones[cj], ck, new_miss);
  };
  if (kernel_ == MergeKernel::kLegacy) {
    LegacyAddMerge(table_, cj, row, base_miss, scratch_, accept_new,
                   keep_on_hit, keep_on_miss);
  } else {
    InPlaceAddMerge(table_, cj, row, base_miss, scratch_, kernel_,
                    accept_new, keep_on_hit, keep_on_miss);
  }
}

void StreamingSimilarityPass::MergeMissOnly(ColumnId cj,
                                            std::span<const ColumnId> row) {
  const auto keep_on_hit = [this, cj](ColumnId ck, uint32_t miss) {
    return !config_.policy.max_hits_pruning ||
           SurvivesMaxHitsOnHit(cj, ck, miss);
  };
  const auto keep_on_miss = [this, cj](ColumnId ck, uint32_t new_miss) {
    if (config_.policy.max_hits_pruning) {
      return SurvivesMaxHitsOnMiss(cj, ck, new_miss);
    }
    return WithinPairBudget(config_.ones[cj], ck, new_miss);
  };
  if (kernel_ == MergeKernel::kLegacy) {
    LegacyMissMerge(table_, cj, row, scratch_, keep_on_hit, keep_on_miss);
  } else {
    InPlaceMissMerge(table_, cj, row, scratch_, kernel_, keep_on_hit,
                     keep_on_miss);
  }
}

void StreamingSimilarityPass::FlushColumn(ColumnId cj) {
  const auto list = table_.List(cj);
  for (size_t j = 0; j < list.size; ++j) {
    if (static_cast<int64_t>(list.miss[j]) > PairBudget(cj, list.cand[j])) {
      continue;
    }
    EmitPair(cj, list.cand[j], config_.ones[cj] - list.miss[j]);
  }
  table_.Release(cj);
}

void StreamingSimilarityPass::EmitPair(ColumnId ci, ColumnId ck,
                                       uint32_t intersection) {
  const bool identical = config_.ones[ci] == config_.ones[ck] &&
                         intersection == config_.ones[ci];
  if (!config_.emit_identical && identical) return;
  out_.Add(SimilarityPair{ci, ck, config_.ones[ci], config_.ones[ck],
                          intersection});
}

void StreamingSimilarityPass::RunBitmapPhases() {
  const size_t tn = tail_.size();
  std::vector<int32_t> bm_index(config_.num_columns, -1);
  std::vector<PostingContainer> bitmaps;
  for (size_t t = 0; t < tn; ++t) {
    for (ColumnId c : tail_[t]) {
      if (bm_index[c] < 0) {
        bm_index[c] = static_cast<int32_t>(bitmaps.size());
        bitmaps.emplace_back();
      }
      bitmaps[bm_index[c]].Append(static_cast<uint32_t>(t));
    }
  }
  for (PostingContainer& p : bitmaps) p.Optimize();

  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!table_.HasList(c)) continue;
    if (static_cast<int64_t>(cnt_[c]) <= col_budget_[c]) continue;
    const PostingContainer* bj =
        bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
    const auto list = table_.List(c);
    for (size_t e = 0; e < list.size; ++e) {
      size_t extra = 0;
      if (bj != nullptr) {
        extra = bm_index[list.cand[e]] >= 0
                    ? bj->AndNotCount(bitmaps[bm_index[list.cand[e]]])
                    : bj->cardinality();
      }
      const int64_t total = static_cast<int64_t>(list.miss[e]) + extra;
      if (total <= PairBudget(c, list.cand[e])) {
        EmitPair(c, list.cand[e],
                 config_.ones[c] - static_cast<uint32_t>(total));
      }
    }
    table_.Release(c);
  }

  if (config_.min_similarity == 1.0) {
    // Identical-column fast path (Algorithm 5.1 step 2); sort-based
    // grouping of (hash, column) pairs, as in the batch engine.
    std::vector<std::pair<uint64_t, ColumnId>> hashed;
    for (ColumnId c = 0; c < config_.num_columns; ++c) {
      if (!ActiveOk(c) || config_.ones[c] == 0) continue;
      if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
      if (table_.HasList(c)) table_.Release(c);
      if (cnt_[c] != 0 || bm_index[c] < 0) continue;
      hashed.emplace_back(bitmaps[bm_index[c]].Hash(), c);
    }
    std::sort(hashed.begin(), hashed.end());
    for (size_t lo = 0; lo < hashed.size();) {
      size_t hi = lo + 1;
      while (hi < hashed.size() && hashed[hi].first == hashed[lo].first) {
        ++hi;
      }
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = i + 1; j < hi; ++j) {
          const ColumnId ci = hashed[i].second;
          const ColumnId cj = hashed[j].second;
          // The canonical antecedent of an identical pair is the lower
          // id; in sharded runs only its owner emits the pair (mirrors
          // dmc_sim_pass.cc).
          if (!LhsOk(std::min(ci, cj))) continue;
          if (bitmaps[bm_index[ci]] == bitmaps[bm_index[cj]]) {
            EmitPair(ci, cj, config_.ones[ci]);
          }
        }
      }
      lo = hi;
    }
    return;
  }

  // Dense per-column hit counts with a touched list for O(touched)
  // reset (the batch engine's layout; see dmc_base.cc).
  std::vector<uint32_t> hits(config_.num_columns, 0);
  std::vector<uint8_t> seen(config_.num_columns, 0);
  std::vector<ColumnId> touched;
  const auto touch = [&](ColumnId ck) {
    if (!seen[ck]) {
      seen[ck] = 1;
      touched.push_back(ck);
    }
  };
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!LhsOk(c) || !ActiveOk(c) || config_.ones[c] == 0) continue;
    if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
    touched.clear();
    if (table_.HasList(c)) {
      const auto list = table_.List(c);
      for (size_t e = 0; e < list.size; ++e) {
        touch(list.cand[e]);
        hits[list.cand[e]] = cnt_[c] - list.miss[e];
      }
    }
    if (bm_index[c] >= 0) {
      bitmaps[bm_index[c]].ForEach([&](uint32_t t) {
        for (ColumnId ck : tail_[t]) {
          if (ck != c) {
            touch(ck);
            ++hits[ck];
          }
        }
      });
    }
    for (ColumnId ck : touched) {
      const uint32_t h = hits[ck];
      seen[ck] = 0;
      hits[ck] = 0;
      if (!Qualifies(ck, c)) continue;
      if (static_cast<int64_t>(h) >=
          MinHitsForSimilarity(config_.ones[c], config_.ones[ck],
                               config_.min_similarity)) {
        EmitPair(c, ck, h);
      }
    }
    if (table_.HasList(c)) table_.Release(c);
  }
}

StatusOr<SimilarityRuleSet> StreamingSimilarityPass::Finish() {
  DMC_CHECK(!finished_);
  finished_ = true;
  if (!fault_.ok()) return fault_;
  if (cancelled_) {
    return CancelledError("stream cancelled in " +
                          std::string(config_.phase) + " after " +
                          std::to_string(rows_seen_) + " rows");
  }
  if (rows_seen_ != config_.total_rows) {
    return FailedPreconditionError(
        "stream ended early: saw " + std::to_string(rows_seen_) +
        " rows, expected " + std::to_string(config_.total_rows));
  }
  if (bitmap_mode_) RunBitmapPhases();
  return std::move(out_);
}

}  // namespace dmc
