#include "core/streaming_sim.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "observe/progress.h"
#include "util/bitvector.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dmc {

StreamingSimilarityPass::StreamingSimilarityPass(Config config)
    : config_(std::move(config)),
      table_(config_.num_columns, config_.bytes_per_entry, &tracker_),
      cnt_(config_.num_columns, 0) {
  DMC_CHECK_EQ(config_.ones.size(), config_.num_columns);
  DMC_CHECK_GT(config_.min_similarity, 0.0);
  DMC_CHECK_LE(config_.min_similarity, 1.0);
  all_active_ =
      config_.active.empty() ||
      std::all_of(config_.active.begin(), config_.active.end(),
                  [](uint8_t a) { return a != 0; });
  col_budget_.resize(config_.num_columns);
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    col_budget_[c] =
        ColumnMaxMissesForSimilarity(config_.ones[c], config_.min_similarity);
  }
}

bool StreamingSimilarityPass::Qualifies(ColumnId ck, ColumnId cj) const {
  return config_.ones[ck] > config_.ones[cj] ||
         (config_.ones[ck] == config_.ones[cj] && ck > cj);
}

int64_t StreamingSimilarityPass::PairBudget(ColumnId ci,
                                            ColumnId ck) const {
  return MaxMissesForSimilarity(config_.ones[ci], config_.ones[ck],
                                config_.min_similarity);
}

bool StreamingSimilarityPass::SurvivesMaxHitsOnHit(ColumnId cj, ColumnId ck,
                                                   uint32_t miss) const {
  const int64_t rem_j = static_cast<int64_t>(config_.ones[cj]) - cnt_[cj];
  const int64_t rem_k = static_cast<int64_t>(config_.ones[ck]) - cnt_[ck];
  const int64_t hits_so_far = static_cast<int64_t>(cnt_[cj]) - miss;
  return hits_so_far + std::min(rem_j, rem_k) >=
         MinHitsForSimilarity(config_.ones[cj], config_.ones[ck],
                              config_.min_similarity);
}

bool StreamingSimilarityPass::SurvivesMaxHitsOnMiss(
    ColumnId cj, ColumnId ck, uint32_t new_miss) const {
  const int64_t rem_j =
      static_cast<int64_t>(config_.ones[cj]) - cnt_[cj] - 1;
  const int64_t rem_k = static_cast<int64_t>(config_.ones[ck]) - cnt_[ck];
  const int64_t hits_so_far = static_cast<int64_t>(cnt_[cj]) -
                              (static_cast<int64_t>(new_miss) - 1);
  return hits_so_far + std::min(rem_j, rem_k) >=
         MinHitsForSimilarity(config_.ones[cj], config_.ones[ck],
                              config_.min_similarity);
}

std::span<const ColumnId> StreamingSimilarityPass::FilteredRow(
    std::span<const ColumnId> row) {
  if (all_active_) return row;
  scratch_row_.clear();
  for (ColumnId c : row) {
    if (config_.active[c]) scratch_row_.push_back(c);
  }
  return scratch_row_;
}

void StreamingSimilarityPass::ProcessRow(std::span<const ColumnId> row) {
  DMC_CHECK(!finished_);
  DMC_CHECK_LT(rows_seen_, config_.total_rows);

  if (fault_.ok() && fail::Enabled()) {
    Status injected = fail::InjectStatus("streaming.sim.row");
    if (!injected.ok()) fault_ = std::move(injected);
  }
  if (!fault_.ok()) {
    // Same contract as cancellation: count rows so the replay loop stays
    // consistent, do no work; Finish() surfaces the fault.
    ++rows_seen_;
    return;
  }

  const ObserveContext& obs = config_.policy.observe;
  if (!cancelled_ && obs.has_progress()) {
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    if (rows_seen_ % interval == 0) {
      ProgressUpdate update;
      update.phase = config_.phase;
      update.rows_processed = rows_seen_;
      update.total_rows = config_.total_rows;
      update.live_candidates = table_.total_entries();
      update.counter_bytes = table_.bytes();
      update.shard = obs.shard;
      if (!obs.progress(update)) cancelled_ = true;
    }
  }
  if (cancelled_) {
    // Keep counting rows so the caller's replay loop stays consistent,
    // but stop doing any work; Finish() reports the cancellation.
    ++rows_seen_;
    return;
  }

  const auto filtered = FilteredRow(row);

  if (!bitmap_mode_ && config_.policy.bitmap_fallback &&
      config_.total_rows - rows_seen_ <=
          config_.policy.bitmap_max_remaining_rows &&
      table_.bytes() >= config_.policy.memory_threshold_bytes) {
    bitmap_mode_ = true;
  }

  if (bitmap_mode_) {
    tail_.emplace_back(filtered.begin(), filtered.end());
    ++rows_seen_;
    return;
  }

  for (ColumnId cj : filtered) {
    if (static_cast<int64_t>(cnt_[cj]) <= col_budget_[cj]) {
      MergeWithAdd(cj, filtered);
    } else if (table_.HasList(cj)) {
      MergeMissOnly(cj, filtered);
    }
  }
  for (ColumnId cj : filtered) {
    ++cnt_[cj];
    if (cnt_[cj] == config_.ones[cj] && table_.HasList(cj)) {
      FlushColumn(cj);
    }
  }
  ++rows_seen_;
}

void StreamingSimilarityPass::MergeWithAdd(ColumnId cj,
                                           std::span<const ColumnId> row) {
  if (!table_.HasList(cj)) table_.Create(cj);
  const auto& list = table_.List(cj);
  scratch_.clear();
  const uint32_t base_miss = cnt_[cj];
  size_t i = 0, j = 0;
  while (i < row.size() || j < list.size()) {
    if (j >= list.size() || (i < row.size() && row[i] < list[j].cand)) {
      const ColumnId ck = row[i++];
      if (ck == cj || !Qualifies(ck, cj)) continue;
      if (config_.policy.column_density_pruning) {
        const int64_t budget = PairBudget(cj, ck);
        if (budget < 0 || static_cast<int64_t>(base_miss) > budget) {
          continue;
        }
      }
      if (config_.policy.max_hits_pruning &&
          !SurvivesMaxHitsOnHit(cj, ck, base_miss)) {
        continue;
      }
      scratch_.push_back({ck, base_miss});
    } else if (i >= row.size() || list[j].cand < row[i]) {
      CandidateEntry e = list[j++];
      ++e.miss;
      if (static_cast<int64_t>(e.miss) > PairBudget(cj, e.cand)) continue;
      if (config_.policy.max_hits_pruning &&
          !SurvivesMaxHitsOnMiss(cj, e.cand, e.miss)) {
        continue;
      }
      scratch_.push_back(e);
    } else {
      const CandidateEntry e = list[j];
      ++i;
      ++j;
      if (config_.policy.max_hits_pruning &&
          !SurvivesMaxHitsOnHit(cj, e.cand, e.miss)) {
        continue;
      }
      scratch_.push_back(e);
    }
  }
  table_.Replace(cj, scratch_);
}

void StreamingSimilarityPass::MergeMissOnly(ColumnId cj,
                                            std::span<const ColumnId> row) {
  const auto& list = table_.List(cj);
  if (list.empty()) return;
  scratch_.clear();
  size_t i = 0;
  for (size_t j = 0; j < list.size(); ++j) {
    while (i < row.size() && row[i] < list[j].cand) ++i;
    CandidateEntry e = list[j];
    const bool hit = i < row.size() && row[i] == e.cand;
    if (!hit) {
      ++e.miss;
      if (static_cast<int64_t>(e.miss) > PairBudget(cj, e.cand)) continue;
      if (config_.policy.max_hits_pruning &&
          !SurvivesMaxHitsOnMiss(cj, e.cand, e.miss)) {
        continue;
      }
    } else if (config_.policy.max_hits_pruning &&
               !SurvivesMaxHitsOnHit(cj, e.cand, e.miss)) {
      continue;
    }
    scratch_.push_back(e);
  }
  table_.Replace(cj, scratch_);
}

void StreamingSimilarityPass::FlushColumn(ColumnId cj) {
  for (const CandidateEntry& e : table_.List(cj)) {
    if (static_cast<int64_t>(e.miss) > PairBudget(cj, e.cand)) continue;
    EmitPair(cj, e.cand, config_.ones[cj] - e.miss);
  }
  table_.Release(cj);
}

void StreamingSimilarityPass::EmitPair(ColumnId ci, ColumnId ck,
                                       uint32_t intersection) {
  const bool identical = config_.ones[ci] == config_.ones[ck] &&
                         intersection == config_.ones[ci];
  if (!config_.emit_identical && identical) return;
  out_.Add(SimilarityPair{ci, ck, config_.ones[ci], config_.ones[ck],
                          intersection});
}

void StreamingSimilarityPass::RunBitmapPhases() {
  const size_t tn = tail_.size();
  std::vector<int32_t> bm_index(config_.num_columns, -1);
  std::vector<BitVector> bitmaps;
  for (size_t t = 0; t < tn; ++t) {
    for (ColumnId c : tail_[t]) {
      if (bm_index[c] < 0) {
        bm_index[c] = static_cast<int32_t>(bitmaps.size());
        bitmaps.emplace_back(tn);
      }
      bitmaps[bm_index[c]].Set(t);
    }
  }

  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!table_.HasList(c)) continue;
    if (static_cast<int64_t>(cnt_[c]) <= col_budget_[c]) continue;
    const BitVector* bj = bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
    for (const CandidateEntry& e : table_.List(c)) {
      size_t extra = 0;
      if (bj != nullptr) {
        extra = bm_index[e.cand] >= 0
                    ? bj->AndNotCount(bitmaps[bm_index[e.cand]])
                    : bj->Count();
      }
      const int64_t total = static_cast<int64_t>(e.miss) + extra;
      if (total <= PairBudget(c, e.cand)) {
        EmitPair(c, e.cand,
                 config_.ones[c] - static_cast<uint32_t>(total));
      }
    }
    table_.Release(c);
  }

  if (config_.min_similarity == 1.0) {
    // Identical-column fast path (Algorithm 5.1 step 2).
    std::unordered_map<uint64_t, std::vector<ColumnId>> by_hash;
    for (ColumnId c = 0; c < config_.num_columns; ++c) {
      if (!ActiveOk(c) || config_.ones[c] == 0) continue;
      if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
      if (table_.HasList(c)) table_.Release(c);
      if (cnt_[c] != 0 || bm_index[c] < 0) continue;
      by_hash[bitmaps[bm_index[c]].Hash()].push_back(c);
    }
    for (const auto& [hash, cols] : by_hash) {
      for (size_t i = 0; i < cols.size(); ++i) {
        for (size_t j = i + 1; j < cols.size(); ++j) {
          if (bitmaps[bm_index[cols[i]]] == bitmaps[bm_index[cols[j]]]) {
            EmitPair(cols[i], cols[j], config_.ones[cols[i]]);
          }
        }
      }
    }
    return;
  }

  std::unordered_map<ColumnId, uint32_t> hits;
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!ActiveOk(c) || config_.ones[c] == 0) continue;
    if (static_cast<int64_t>(cnt_[c]) > col_budget_[c]) continue;
    hits.clear();
    if (table_.HasList(c)) {
      for (const CandidateEntry& e : table_.List(c)) {
        hits[e.cand] = cnt_[c] - e.miss;
      }
    }
    if (bm_index[c] >= 0) {
      for (uint32_t t : bitmaps[bm_index[c]].ToIndices()) {
        for (ColumnId ck : tail_[t]) {
          if (ck != c) ++hits[ck];
        }
      }
    }
    for (const auto& [ck, h] : hits) {
      if (!Qualifies(ck, c)) continue;
      if (static_cast<int64_t>(h) >=
          MinHitsForSimilarity(config_.ones[c], config_.ones[ck],
                               config_.min_similarity)) {
        EmitPair(c, ck, h);
      }
    }
    if (table_.HasList(c)) table_.Release(c);
  }
}

StatusOr<SimilarityRuleSet> StreamingSimilarityPass::Finish() {
  DMC_CHECK(!finished_);
  finished_ = true;
  if (!fault_.ok()) return fault_;
  if (cancelled_) {
    return CancelledError("stream cancelled in " +
                          std::string(config_.phase) + " after " +
                          std::to_string(rows_seen_) + " rows");
  }
  if (rows_seen_ != config_.total_rows) {
    return FailedPreconditionError(
        "stream ended early: saw " + std::to_string(rows_seen_) +
        " rows, expected " + std::to_string(config_.total_rows));
  }
  if (bitmap_mode_) RunBitmapPhases();
  return std::move(out_);
}

}  // namespace dmc
