// DMC-base (Algorithm 3.1) and DMC-bitmap (Algorithm 4.1) for implication
// rules: one "pass" = the second data scan, with an optional switch to the
// low-memory bitmap algorithm near the end of the scan.
//
// The pass is parameterized by a per-column miss budget and an active-
// column mask, so the same code runs both the 100%-confidence phase
// (budgets all zero, id-only candidate entries — the §4.3 simplification)
// and the general sub-100% phase of DMC-imp.

#ifndef DMC_CORE_DMC_BASE_H_
#define DMC_CORE_DMC_BASE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/dmc_options.h"
#include "matrix/binary_matrix.h"
#include "rules/rule_set.h"
#include "util/memory_tracker.h"

namespace dmc {

/// Inputs of one implication pass over the data.
struct ImplicationPassInput {
  const BinaryMatrix* matrix = nullptr;
  /// Row visit order for the second scan (§4.1).
  std::span<const RowId> order;
  /// maxmis(c) per column; rules from c may have at most this many misses.
  const std::vector<int64_t>* max_misses = nullptr;
  /// Columns participating in this pass; inactive columns are invisible.
  const std::vector<uint8_t>* active = nullptr;
  /// Optional antecedent shard (parallel divide-and-conquer, §7 future
  /// work): when set, only these columns keep candidate lists / emit
  /// rules as LHS; all active columns still serve as RHS candidates.
  /// Running the pass once per shard of a partition and unioning the
  /// outputs yields exactly the unsharded result.
  const std::vector<uint8_t>* lhs_shard = nullptr;
  /// When false, rules with zero misses are suppressed (they were already
  /// produced by the 100% phase).
  bool emit_zero_miss = true;
  /// Candidate-entry accounting size: kEntryBytesIdOnly for the 100%
  /// phase, kEntryBytesWithCounters otherwise.
  size_t bytes_per_entry = 8;
  const DmcPolicy* policy = nullptr;
  /// Shared tracker for counter-array accounting (peaks compose across
  /// phases).
  MemoryTracker* tracker = nullptr;
  /// Optional per-row history sinks (Fig. 3 / Example 3.1 traces).
  std::vector<size_t>* memory_history = nullptr;
  std::vector<size_t>* candidate_history = nullptr;
  /// Phase label for progress updates and trace spans ("hundred_phase",
  /// "sub_phase").
  const char* phase = "pass";
};

/// Outcome of one pass.
struct ImplicationPassResult {
  /// Whether the DMC-bitmap fallback fired.
  bool bitmap_used = false;
  /// Rows handled by the bitmap fallback.
  size_t bitmap_rows = 0;
  double base_seconds = 0.0;
  double bitmap_seconds = 0.0;
  /// Peak live candidate entries during this pass.
  size_t peak_entries = 0;
  /// Rows of the order this pass consumed before finishing or being
  /// cancelled.
  size_t rows_processed = 0;
  /// The progress callback asked to stop; `out` holds partial results
  /// the caller must discard.
  bool cancelled = false;
};

/// Runs DMC-base over `input.order`, switching to DMC-bitmap when the
/// policy's memory/remaining-row conditions are met, and appends every
/// discovered rule (with exact miss counts) to `out`.
ImplicationPassResult RunImplicationPass(const ImplicationPassInput& input,
                                         ImplicationRuleSet* out);

}  // namespace dmc

#endif  // DMC_CORE_DMC_BASE_H_
