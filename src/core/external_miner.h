// Disk-based two-pass DMC — the form the paper actually ran.
//
// Pass 1 streams the transaction text file once, collecting ones(c) and
// row densities, and partitions the rows into density-bucket files
// [2^i, 2^{i+1}) in a working directory (§4.1: "we divide the original
// data according to the number of 1's in each row ... then, in the next
// scan, we read the lower density buckets first").
//
// Pass 2 streams the bucket files sparsest-first through the streaming
// DMC-imp pipeline (once per phase), never materializing the matrix.
// Resident memory is the counter array plus, if the DMC-bitmap fallback
// fires, the last <= bitmap_max_remaining_rows rows.

#ifndef DMC_CORE_EXTERNAL_MINER_H_
#define DMC_CORE_EXTERNAL_MINER_H_

#include <string>

#include "core/dmc_options.h"
#include "rules/rule_set.h"
#include "util/statusor.h"

namespace dmc {

struct ExternalMiningStats {
  double pass1_seconds = 0.0;
  double partition_seconds = 0.0;
  double mine_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t rows = 0;
  uint32_t columns = 0;
  /// Non-empty density-bucket files written.
  size_t bucket_files = 0;
};

/// Mines implication rules from a transaction text file at `path`.
/// Bucket files are created under `work_dir` (which must exist) and
/// removed afterwards. RowOrderPolicy::kIdentity skips the partitioning
/// and streams the original file directly.
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats = nullptr);

/// Mines similarity pairs from a transaction text file; same mechanics
/// as MineImplicationsFromFile.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_CORE_EXTERNAL_MINER_H_
