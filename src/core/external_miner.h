// Disk-based two-pass DMC — the form the paper actually ran.
//
// Pass 1 streams the transaction text file once, collecting ones(c) and
// row densities, and partitions the rows into density-bucket files
// [2^i, 2^{i+1}) in a working directory (§4.1: "we divide the original
// data according to the number of 1's in each row ... then, in the next
// scan, we read the lower density buckets first").
//
// Pass 2 streams the bucket files sparsest-first through the streaming
// DMC-imp pipeline (once per phase), never materializing the matrix.
// Resident memory is the counter array plus, if the DMC-bitmap fallback
// fires, the last <= bitmap_max_remaining_rows rows.
//
// Robustness: every file operation sits behind a failpoint site and a
// bounded retry policy; pass-1 results can be checkpointed
// (core/checkpoint.h) so a killed run restarted with resume=true skips
// pass 1 and replays the surviving bucket files after validating them
// against the checkpoint's fingerprints.

#ifndef DMC_CORE_EXTERNAL_MINER_H_
#define DMC_CORE_EXTERNAL_MINER_H_

#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/dmc_options.h"
#include "matrix/matrix_io.h"
#include "rules/rule_set.h"
#include "util/retry.h"
#include "util/statusor.h"

namespace dmc {

/// Fault-tolerance knobs for the external miner's disk pipeline.
struct ExternalIoOptions {
  /// Checkpoint file path; empty disables checkpointing. When set, pass-1
  /// artifacts (bucket files + checkpoint) are written and kept after the
  /// run so a later invocation can resume.
  std::string checkpoint_path;
  /// Try to resume from `checkpoint_path`: if the checkpoint reads
  /// cleanly, its input fingerprint matches `path`, and every bucket file
  /// it names is intact, pass 1 is skipped. Any validation failure falls
  /// back to a fresh run (never an error).
  bool resume = false;
  /// Keep bucket files after the run even without checkpointing.
  bool keep_artifacts = false;
  /// Bounded retry-with-backoff for transient I/O failures (file opens).
  RetryPolicy retry;
};

struct ExternalMiningStats {
  double pass1_seconds = 0.0;
  double partition_seconds = 0.0;
  double mine_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t rows = 0;
  uint32_t columns = 0;
  /// Non-empty density-bucket files written.
  size_t bucket_files = 0;
  /// True when pass 1 was skipped by resuming from a valid checkpoint.
  bool resumed = false;
  /// Transient I/O failures that were retried (see ExternalIoOptions).
  uint64_t io_retries = 0;
};

/// Shared setup/replay of the two-pass disk pipeline, exposed so the
/// multi-process shard coordinator (src/shard/) can run pass 1 once and
/// hand the resulting bucket inventory to worker processes, which replay
/// the same artifacts without re-scanning the input.
///
/// Two construction paths:
///   * Prepare(): pass 1 + (optional) bucket partitioning, or a
///     checkpoint resume — what the single-process miners do.
///   * AdoptPlan(): trust an externally supplied first-pass result and
///     bucket inventory (a shard worker receiving the coordinator's
///     kInit frame). No scan, no partitioning, no checkpointing.
///
/// The destructor removes the bucket files unless checkpointing or
/// keep_artifacts is set (AdoptPlan implies keep: the coordinator owns
/// the artifacts, its workers must not delete them).
class ExternalInput {
 public:
  ExternalInput(std::string path, std::string work_dir, bool bucketed,
                const ExternalIoOptions& io, const ObserveContext& obs,
                ExternalMiningStats* stats);
  ~ExternalInput();

  ExternalInput(const ExternalInput&) = delete;
  ExternalInput& operator=(const ExternalInput&) = delete;

  /// Pass 1 + (optional) bucket partitioning, or a checkpoint resume.
  [[nodiscard]] Status Prepare();

  /// Adopts an externally computed plan: first-pass stats plus the ids
  /// of the bucket files already present under work_dir (ignored when
  /// !bucketed). Artifacts are treated as borrowed and never removed.
  void AdoptPlan(FirstPassStats first_pass, std::vector<int> buckets);

  const FirstPassStats& first_pass() const { return first_pass_; }
  /// Ascending ids of the non-empty bucket files (replay order).
  const std::vector<int>& buckets() const { return used_buckets_; }

  /// One replay over the data in mining order. `sink` sees each row as
  /// sorted, deduplicated column ids.
  using RowSink = std::function<void(std::span<const ColumnId>)>;
  [[nodiscard]] Status Replay(const RowSink& sink);

 private:
  Status OpenForRead(const char* site, const std::string& file_path,
                     std::ifstream* in);
  Status RetryOp(const std::function<Status()>& op);
  Status Partition();
  Status WriteCheckpoint();
  bool TryResume();

  std::string path_;
  std::string work_dir_;
  bool bucketed_;
  ExternalIoOptions io_;
  ObserveContext obs_;
  ExternalMiningStats* stats_;
  FirstPassStats first_pass_;
  std::vector<int> used_buckets_;
  std::vector<uint64_t> bucket_rows_;
  /// Artifacts adopted via AdoptPlan are never removed.
  bool borrowed_ = false;
};

/// Mines implication rules from a transaction text file at `path`.
/// Bucket files are created under `work_dir` (which must exist) and
/// removed afterwards unless the io options keep them. RowOrderPolicy::
/// kIdentity skips the partitioning and streams the original file
/// directly.
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats = nullptr);
[[nodiscard]] StatusOr<ImplicationRuleSet> MineImplicationsFromFile(
    const std::string& path, const ImplicationMiningOptions& options,
    const std::string& work_dir, const ExternalIoOptions& io,
    ExternalMiningStats* stats = nullptr);

/// Mines similarity pairs from a transaction text file; same mechanics
/// as MineImplicationsFromFile.
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, ExternalMiningStats* stats = nullptr);
[[nodiscard]] StatusOr<SimilarityRuleSet> MineSimilaritiesFromFile(
    const std::string& path, const SimilarityMiningOptions& options,
    const std::string& work_dir, const ExternalIoOptions& io,
    ExternalMiningStats* stats = nullptr);

}  // namespace dmc

#endif  // DMC_CORE_EXTERNAL_MINER_H_
