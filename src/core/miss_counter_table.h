// The counter array: per-column candidate lists with miss counters.
//
// This is the central data structure of the paper — "the counter array
// that keeps both miss counters and candidate lists for each column"
// (§4.4). Its byte footprint is what the 50 MB bitmap-switch rule and the
// memory figures (Fig. 3, Fig. 6(g,h)) measure, so the table keeps its own
// accounting through a MemoryTracker:
//   * a fixed overhead per live (non-NULL) list, and
//   * a configurable cost per candidate entry — 8 bytes in the general
//     case (column id + miss counter), 4 bytes when the phase needs no
//     miss counters (the 100%-rule simplification of §4.3).

#ifndef DMC_CORE_MISS_COUNTER_TABLE_H_
#define DMC_CORE_MISS_COUNTER_TABLE_H_

#include <cstdint>
#include <vector>

#include "matrix/binary_matrix.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace dmc {

/// One candidate in a column's list: the partner column and the number of
/// misses counted against it so far.
struct CandidateEntry {
  ColumnId cand;
  uint32_t miss;
};

/// Per-column candidate lists, kept sorted by candidate id so the DMC scan
/// can merge a list with a (sorted) row in linear time. Lists are NULL
/// until created, matching the paper's cand(c) = NULL initial state.
class MissCounterTable {
 public:
  /// Accounted per live list (vector header + table bookkeeping).
  static constexpr size_t kPerListOverheadBytes = 32;
  /// Entry cost with miss counters (id + counter).
  static constexpr size_t kEntryBytesWithCounters = 8;
  /// Entry cost for 100%-rule phases (id only, §4.3).
  static constexpr size_t kEntryBytesIdOnly = 4;

  /// `tracker` must outlive the table; it accumulates this table's bytes
  /// (several tables in one mining run may share one tracker, so peaks
  /// compose correctly).
  MissCounterTable(ColumnId num_columns, size_t bytes_per_entry,
                   MemoryTracker* tracker)
      : lists_(num_columns),
        created_(num_columns, 0),
        bytes_per_entry_(bytes_per_entry),
        tracker_(tracker) {}

  ~MissCounterTable() { ReleaseEverything(); }

  MissCounterTable(const MissCounterTable&) = delete;
  MissCounterTable& operator=(const MissCounterTable&) = delete;

  bool HasList(ColumnId c) const { return created_[c] != 0; }

  /// Creates an empty list for `c`. Must not already exist.
  void Create(ColumnId c) {
    DMC_CHECK(!created_[c]);
    created_[c] = 1;
    ++live_lists_;
    tracker_->Add(kPerListOverheadBytes);
  }

  /// The list for `c`; valid only when HasList(c).
  const std::vector<CandidateEntry>& List(ColumnId c) const {
    return lists_[c];
  }

  /// Replaces the list for `c` with `entries` (swapped in; `entries` is
  /// left with the old contents). Updates accounting by the size delta.
  void Replace(ColumnId c, std::vector<CandidateEntry>& entries) {
    DMC_CHECK(created_[c]);
    const size_t old_size = lists_[c].size();
    const size_t new_size = entries.size();
    lists_[c].swap(entries);
    total_entries_ += new_size;
    total_entries_ -= old_size;
    if (new_size > old_size) {
      tracker_->Add((new_size - old_size) * bytes_per_entry_);
    } else {
      tracker_->Sub((old_size - new_size) * bytes_per_entry_);
    }
  }

  /// Frees the list for `c` (back to NULL).
  void Release(ColumnId c) {
    DMC_CHECK(created_[c]);
    tracker_->Sub(lists_[c].size() * bytes_per_entry_ +
                  kPerListOverheadBytes);
    total_entries_ -= lists_[c].size();
    --live_lists_;
    std::vector<CandidateEntry>().swap(lists_[c]);
    created_[c] = 0;
  }

  /// Releases every live list.
  void ReleaseEverything() {
    for (ColumnId c = 0; c < created_.size(); ++c) {
      if (created_[c]) Release(c);
    }
  }

  ColumnId num_columns() const {
    return static_cast<ColumnId>(lists_.size());
  }

  /// Live candidate entries across all lists.
  size_t total_entries() const { return total_entries_; }

  /// Accounted bytes for this table alone. O(1).
  size_t bytes() const {
    return live_lists_ * kPerListOverheadBytes +
           total_entries_ * bytes_per_entry_;
  }

  /// Number of live (non-NULL) lists.
  size_t live_lists() const { return live_lists_; }

  MemoryTracker* tracker() const { return tracker_; }

 private:
  std::vector<std::vector<CandidateEntry>> lists_;
  std::vector<uint8_t> created_;
  size_t bytes_per_entry_;
  size_t total_entries_ = 0;
  size_t live_lists_ = 0;
  MemoryTracker* tracker_;
};

}  // namespace dmc

#endif  // DMC_CORE_MISS_COUNTER_TABLE_H_
