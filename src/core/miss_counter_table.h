// The counter array: per-column candidate lists with miss counters.
//
// This is the central data structure of the paper — "the counter array
// that keeps both miss counters and candidate lists for each column"
// (§4.4). Its byte footprint is what the 50 MB bitmap-switch rule and the
// memory figures (Fig. 3, Fig. 6(g,h)) measure, so the table keeps its own
// accounting through a MemoryTracker:
//   * a fixed overhead per live (non-NULL) list,
//   * a per-entry miss-counter cost — 4 bytes in the general case, 0 when
//     the phase needs no miss counters (the 100%-rule simplification of
//     §4.3), selected via bytes_per_entry (8 or 4), and
//   * the candidate-id set itself at its hybrid posting-container cost:
//     4 bytes per id, capped at PostingContainer::BitmapCostBytes(cols) —
//     a list denser than one packed bitmap never costs more than that
//     bitmap (postings/posting_container.h). The cap is what turns the
//     paper's global 50 MB bitmap-switch budget into a per-list bound;
//     it is monotone in the list size, so per-row peaks and the exported
//     memory histories stay invariant under DmcPolicy::kernel.
//
// Storage is an arena of SoA blocks: each list is one contiguous
// allocation holding `capacity` candidate ids followed by `capacity` miss
// counters, carved out of large slabs by a bump pointer and recycled
// through per-size-class free lists on Release. The SoA split keeps the
// id array dense for the SIMD/galloping intersection kernels
// (core/kernels.h), and the arena removes the per-list malloc/free churn
// of the old vector-of-vectors layout. Accounting stays logical-size
// based (capacity is never charged), so the reported byte curves are
// independent of the physical layout.

#ifndef DMC_CORE_MISS_COUNTER_TABLE_H_
#define DMC_CORE_MISS_COUNTER_TABLE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "matrix/binary_matrix.h"
#include "postings/posting_container.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace dmc {

/// Bump-pointer arena of SoA candidate blocks. Capacities are powers of
/// two (min 8) so a freed block is exactly reusable for any list of its
/// size class; blocks are never returned to the OS until the arena dies.
class CandidateArena {
 public:
  /// One list's storage: `capacity` ids followed by `capacity` counters.
  struct Block {
    ColumnId* cand = nullptr;
    uint32_t* miss = nullptr;
    uint32_t capacity = 0;
  };

  CandidateArena() = default;
  CandidateArena(const CandidateArena&) = delete;
  CandidateArena& operator=(const CandidateArena&) = delete;

  /// A block with capacity >= max(min_capacity, 8), recycled from the
  /// free list of its size class when possible.
  Block Allocate(size_t min_capacity) {
    const uint32_t cls = ClassFor(min_capacity);
    if (cls < free_.size() && !free_[cls].empty()) {
      const Block b = free_[cls].back();
      free_[cls].pop_back();
      return b;
    }
    const size_t cap = kMinCapacity << cls;
    Block b;
    b.cand = reinterpret_cast<ColumnId*>(
        Carve(cap * (sizeof(ColumnId) + sizeof(uint32_t))));
    b.miss = reinterpret_cast<uint32_t*>(b.cand + cap);
    b.capacity = static_cast<uint32_t>(cap);
    return b;
  }

  /// Returns a block to its size-class free list. Null blocks are a no-op.
  void Release(const Block& b) {
    if (b.capacity == 0) return;
    const uint32_t cls = ClassFor(b.capacity);
    if (free_.size() <= cls) free_.resize(cls + 1);
    free_[cls].push_back(b);
  }

  /// Physical slab bytes owned (diagnostics only — the table's accounted
  /// bytes stay logical-size based).
  size_t slab_bytes() const {
    size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }

 private:
  static constexpr size_t kMinCapacity = 8;
  static constexpr size_t kSlabBytes = size_t{1} << 18;  // 256 KiB
  static constexpr size_t kBlockAlign = 32;              // one AVX2 lane

  static uint32_t ClassFor(size_t capacity) {
    uint32_t cls = 0;
    size_t cap = kMinCapacity;
    while (cap < capacity) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  std::byte* Carve(size_t bytes) {
    if (slabs_.empty() || slabs_.back().used + bytes + kBlockAlign >
                              slabs_.back().size) {
      Slab s;
      s.size = bytes + kBlockAlign > kSlabBytes ? bytes + kBlockAlign
                                                : kSlabBytes;
      s.data = std::make_unique<std::byte[]>(s.size);
      slabs_.push_back(std::move(s));
    }
    Slab& s = slabs_.back();
    const uintptr_t base = reinterpret_cast<uintptr_t>(s.data.get());
    const uintptr_t aligned =
        (base + s.used + kBlockAlign - 1) & ~uintptr_t{kBlockAlign - 1};
    s.used = aligned - base + bytes;
    return reinterpret_cast<std::byte*>(aligned);
  }

  struct Slab {
    std::unique_ptr<std::byte[]> data;
    size_t used = 0;
    size_t size = 0;
  };

  std::vector<Slab> slabs_;
  std::vector<std::vector<Block>> free_;  // indexed by size class
};

/// Per-column candidate lists, kept sorted by candidate id so the DMC scan
/// can merge a list with a (sorted) row in linear time. Lists are NULL
/// until created, matching the paper's cand(c) = NULL initial state.
class MissCounterTable {
 public:
  /// Accounted per live list (header + table bookkeeping).
  static constexpr size_t kPerListOverheadBytes = 32;
  /// Entry cost with miss counters (id + counter).
  static constexpr size_t kEntryBytesWithCounters = 8;
  /// Entry cost for 100%-rule phases (id only, §4.3).
  static constexpr size_t kEntryBytesIdOnly = 4;

  /// Read view of one list (SoA: parallel id / miss-counter arrays).
  struct ListView {
    const ColumnId* cand = nullptr;
    const uint32_t* miss = nullptr;
    size_t size = 0;

    bool empty() const { return size == 0; }
  };

  /// Mutable view for the in-place merge kernels. Writes within
  /// [0, capacity) are legal; commit a new logical size with SetSize().
  struct MutableList {
    ColumnId* cand = nullptr;
    uint32_t* miss = nullptr;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// `tracker` must outlive the table; it accumulates this table's bytes
  /// (several tables in one mining run may share one tracker, so peaks
  /// compose correctly).
  MissCounterTable(ColumnId num_columns, size_t bytes_per_entry,
                   MemoryTracker* tracker)
      : lists_(num_columns),
        created_(num_columns, 0),
        bytes_per_entry_(bytes_per_entry),
        id_bytes_cap_(PostingContainer::BitmapCostBytes(num_columns)),
        tracker_(tracker) {
    DMC_CHECK_GE(bytes_per_entry, kEntryBytesIdOnly);
  }

  ~MissCounterTable() { ReleaseEverything(); }

  MissCounterTable(const MissCounterTable&) = delete;
  MissCounterTable& operator=(const MissCounterTable&) = delete;

  bool HasList(ColumnId c) const { return created_[c] != 0; }

  /// Creates an empty list for `c`. Must not already exist.
  void Create(ColumnId c) {
    DMC_CHECK(!created_[c]);
    created_[c] = 1;
    ++live_lists_;
    tracker_->Add(kPerListOverheadBytes);
    if (sidecars_enabled_) {
      Header& h = lists_[c];
      if (!sidecar_free_.empty()) {
        h.sidecar = sidecar_free_.back();
        sidecar_free_.pop_back();
      } else {
        sidecar_pool_.push_back(std::make_unique<uint64_t[]>(sidecar_words_));
        h.sidecar = sidecar_pool_.back().get();
      }
      std::memset(h.sidecar, 0, sidecar_words_ * sizeof(uint64_t));
    }
  }

  /// Turns on per-list presence sidecars: one bit per column, bit k set
  /// iff column k is currently in the list. The vector merge sweeps use
  /// them for O(1) "already a candidate?" tests without mutating the
  /// shared row mask. Storage is pool-recycled across Release/Create and
  /// is physical acceleration state only — never charged to the tracker.
  /// Must be called before any list is created; callers that enable
  /// sidecars own bit maintenance through the merge kernels (Assign
  /// rebuilds them wholesale as a safety net for the legacy path).
  void EnableSidecars() {
    DMC_CHECK_EQ(live_lists_, size_t{0});
    sidecars_enabled_ = true;
    sidecar_words_ = (static_cast<size_t>(num_columns()) + 63) / 64;
  }

  bool sidecars_enabled() const { return sidecars_enabled_; }

  /// The presence bitmap for `c`'s list; valid only when HasList(c) and
  /// sidecars are enabled.
  uint64_t* Sidecar(ColumnId c) {
    DMC_CHECK(created_[c]);
    return lists_[c].sidecar;
  }
  const uint64_t* Sidecar(ColumnId c) const {
    DMC_CHECK(created_[c]);
    return lists_[c].sidecar;
  }

  static void SidecarSetBit(uint64_t* sc, ColumnId c) {
    sc[c >> 6] |= uint64_t{1} << (c & 63);
  }
  static void SidecarClearBit(uint64_t* sc, ColumnId c) {
    sc[c >> 6] &= ~(uint64_t{1} << (c & 63));
  }
  static bool SidecarTestBit(const uint64_t* sc, ColumnId c) {
    return ((sc[c >> 6] >> (c & 63)) & 1) != 0;
  }

  /// The list for `c`; valid only when HasList(c).
  ListView List(ColumnId c) const {
    DMC_CHECK(created_[c]);
    const Header& h = lists_[c];
    return ListView{h.block.cand, h.block.miss, h.size};
  }

  /// Mutable view of `c`'s list; valid only when HasList(c).
  MutableList Mutable(ColumnId c) {
    DMC_CHECK(created_[c]);
    Header& h = lists_[c];
    return MutableList{h.block.cand, h.block.miss, h.size, h.block.capacity};
  }

  /// Grows `c`'s physical capacity to at least `capacity` (existing
  /// entries are moved to the new block) and returns the updated view.
  /// Pointers from earlier views are invalidated when a move happens.
  MutableList Reserve(ColumnId c, size_t capacity) {
    DMC_CHECK(created_[c]);
    Header& h = lists_[c];
    if (capacity > h.block.capacity) {
      const CandidateArena::Block nb = arena_.Allocate(capacity);
      if (h.size > 0) {
        std::memcpy(nb.cand, h.block.cand, h.size * sizeof(ColumnId));
        std::memcpy(nb.miss, h.block.miss, h.size * sizeof(uint32_t));
      }
      arena_.Release(h.block);
      h.block = nb;
    }
    return MutableList{h.block.cand, h.block.miss, h.size, h.block.capacity};
  }

  /// Commits a new logical size after in-place edits through Mutable() /
  /// Reserve(). One net accounting adjustment, like the old Replace().
  void SetSize(ColumnId c, size_t new_size) {
    DMC_CHECK(created_[c]);
    Header& h = lists_[c];
    DMC_CHECK_LE(new_size, h.block.capacity);
    ApplySizeDelta(&h, new_size);
  }

  /// Replaces `c`'s list with a copy of the given SoA arrays (`miss` may
  /// be null only when `n` == 0). One net accounting adjustment.
  void Assign(ColumnId c, const ColumnId* cand, const uint32_t* miss,
              size_t n) {
    DMC_CHECK(created_[c]);
    Header& h = lists_[c];
    if (n > h.block.capacity) {
      arena_.Release(h.block);
      h.block = arena_.Allocate(n);
    }
    if (n > 0) {
      std::memcpy(h.block.cand, cand, n * sizeof(ColumnId));
      std::memcpy(h.block.miss, miss, n * sizeof(uint32_t));
    }
    if (h.sidecar != nullptr) {
      std::memset(h.sidecar, 0, sidecar_words_ * sizeof(uint64_t));
      for (size_t i = 0; i < n; ++i) SidecarSetBit(h.sidecar, cand[i]);
    }
    ApplySizeDelta(&h, n);
  }

  /// Frees the list for `c` (back to NULL); its block returns to the
  /// arena's free list for reuse.
  void Release(ColumnId c) {
    DMC_CHECK(created_[c]);
    Header& h = lists_[c];
    const size_t entry_bytes = EntryBytes(h.size);
    tracker_->Sub(entry_bytes + kPerListOverheadBytes);
    charged_entry_bytes_ -= entry_bytes;
    total_entries_ -= h.size;
    --live_lists_;
    arena_.Release(h.block);
    if (h.sidecar != nullptr) sidecar_free_.push_back(h.sidecar);
    h = Header{};
    created_[c] = 0;
  }

  /// Releases every live list.
  void ReleaseEverything() {
    for (ColumnId c = 0; c < created_.size(); ++c) {
      if (created_[c]) Release(c);
    }
  }

  ColumnId num_columns() const {
    return static_cast<ColumnId>(lists_.size());
  }

  /// Live candidate entries across all lists.
  size_t total_entries() const { return total_entries_; }

  /// Largest total_entries() ever observed, including transient intra-row
  /// states (the ImplicationPassResult::peak_entries source of truth).
  size_t peak_entries() const { return peak_entries_; }

  /// Peak total_entries() since the last call (mirrors
  /// MemoryTracker::TakeIntervalPeak for the candidate-count history).
  size_t TakeEntriesIntervalPeak() {
    const size_t peak = interval_peak_entries_;
    interval_peak_entries_ = total_entries_;
    return peak;
  }

  /// Accounted bytes for this table alone. O(1): the per-list id-set cap
  /// makes the sum non-decomposable from totals, so it is maintained
  /// incrementally as lists resize.
  size_t bytes() const {
    return live_lists_ * kPerListOverheadBytes + charged_entry_bytes_;
  }

  /// Accounted bytes for one list of `n` entries, excluding the per-list
  /// overhead: miss counters at (bytes_per_entry - 4) each plus the id
  /// set at its posting-container cost, min(4n, BitmapCostBytes(cols)).
  size_t EntryBytes(size_t n) const {
    return n * (bytes_per_entry_ - kEntryBytesIdOnly) +
           std::min(n * kEntryBytesIdOnly, id_bytes_cap_);
  }

  /// Number of live (non-NULL) lists.
  size_t live_lists() const { return live_lists_; }

  /// Physical arena bytes (diagnostics; never part of bytes()).
  size_t arena_bytes() const { return arena_.slab_bytes(); }

  MemoryTracker* tracker() const { return tracker_; }

 private:
  struct Header {
    CandidateArena::Block block;
    uint64_t* sidecar = nullptr;
    uint32_t size = 0;
  };

  void ApplySizeDelta(Header* h, size_t new_size) {
    const size_t old_size = h->size;
    h->size = static_cast<uint32_t>(new_size);
    total_entries_ += new_size;
    total_entries_ -= old_size;
    const size_t old_bytes = EntryBytes(old_size);
    const size_t new_bytes = EntryBytes(new_size);
    charged_entry_bytes_ += new_bytes;
    charged_entry_bytes_ -= old_bytes;
    if (new_bytes > old_bytes) {
      tracker_->Add(new_bytes - old_bytes);
    } else {
      tracker_->Sub(old_bytes - new_bytes);
    }
    if (total_entries_ > peak_entries_) peak_entries_ = total_entries_;
    if (total_entries_ > interval_peak_entries_) {
      interval_peak_entries_ = total_entries_;
    }
  }

  CandidateArena arena_;
  std::vector<Header> lists_;
  std::vector<uint8_t> created_;
  size_t bytes_per_entry_;
  size_t id_bytes_cap_;
  size_t total_entries_ = 0;
  size_t charged_entry_bytes_ = 0;
  size_t live_lists_ = 0;
  size_t peak_entries_ = 0;
  size_t interval_peak_entries_ = 0;
  bool sidecars_enabled_ = false;
  size_t sidecar_words_ = 0;
  std::vector<std::unique_ptr<uint64_t[]>> sidecar_pool_;
  std::vector<uint64_t*> sidecar_free_;
  MemoryTracker* tracker_;
};

}  // namespace dmc

#endif  // DMC_CORE_MISS_COUNTER_TABLE_H_
