// Instrumentation emitted by the mining engines — the raw material for
// every plot in the paper's evaluation section.

#ifndef DMC_CORE_MINING_STATS_H_
#define DMC_CORE_MINING_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dmc {

/// Timing/memory breakdown of one MineImplications / MineSimilarities
/// call. All times are wall-clock seconds.
struct MiningStats {
  // --- time breakdown (Fig. 6(c)-(f)) ---
  /// First pass: ones(c) counting + row bucketing.
  double prescan_seconds = 0.0;
  /// 100%-rule (or identical-column) phase, split into the in-memory scan
  /// and the bitmap fallback.
  double hundred_base_seconds = 0.0;
  double hundred_bitmap_seconds = 0.0;
  /// Sub-100% phase, same split.
  double sub_base_seconds = 0.0;
  double sub_bitmap_seconds = 0.0;
  double total_seconds = 0.0;

  double hundred_seconds() const {
    return hundred_base_seconds + hundred_bitmap_seconds;
  }
  double sub_seconds() const {
    return sub_base_seconds + sub_bitmap_seconds;
  }

  // --- memory (Fig. 3, Fig. 6(g,h)) ---
  /// Peak bytes of the counter array (candidate ids + miss counters).
  size_t peak_counter_bytes = 0;
  /// Peak number of live candidate entries.
  size_t peak_candidates = 0;
  /// Counter-array bytes after each processed row, when history recording
  /// is enabled (Fig. 3).
  std::vector<size_t> memory_history;
  /// Live candidate entries after each processed row, when history
  /// recording is enabled (validates Example 3.1 / §4.1).
  std::vector<size_t> candidate_history;

  // --- control flow ---
  /// Whether the DMC-bitmap fallback fired in each phase.
  bool hundred_bitmap_triggered = false;
  bool sub_bitmap_triggered = false;
  /// Rows handled by the bitmap fallback in the sub-100% phase.
  size_t sub_bitmap_rows = 0;

  // --- configuration echo ---
  /// Resolved hot-path kernel the scan ran with ("legacy", "scalar",
  /// "simd"); empty for engines that do not run the merge kernels.
  std::string kernel;

  // --- output ---
  size_t rules_from_hundred_phase = 0;
  size_t rules_from_sub_phase = 0;
  /// Columns removed by the step-3 cutoff between the phases.
  size_t columns_cut_off = 0;
};

}  // namespace dmc

#endif  // DMC_CORE_MINING_STATS_H_
