#include "core/streaming_imp.h"

#include <algorithm>
#include <string>

#include "core/kernels.h"
#include "observe/progress.h"
#include "postings/posting_container.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dmc {

StreamingImplicationPass::StreamingImplicationPass(Config config)
    : config_(std::move(config)),
      kernel_(ResolveKernel(config_.policy.kernel)),
      table_(config_.num_columns, config_.bytes_per_entry, &tracker_),
      cnt_(config_.num_columns, 0) {
  DMC_CHECK_EQ(config_.ones.size(), config_.num_columns);
  DMC_CHECK_EQ(config_.max_misses.size(), config_.num_columns);
  if (!config_.lhs_shard.empty()) {
    DMC_CHECK_EQ(config_.lhs_shard.size(), config_.num_columns);
  }
  all_active_ =
      config_.active.empty() ||
      std::all_of(config_.active.begin(), config_.active.end(),
                  [](uint8_t a) { return a != 0; });
}

bool StreamingImplicationPass::Qualifies(ColumnId ck, ColumnId cj) const {
  return config_.ones[ck] > config_.ones[cj] ||
         (config_.ones[ck] == config_.ones[cj] && ck > cj);
}

std::span<const ColumnId> StreamingImplicationPass::FilteredRow(
    std::span<const ColumnId> row) {
  if (all_active_) return row;
  scratch_row_.clear();
  for (ColumnId c : row) {
    if (config_.active[c]) scratch_row_.push_back(c);
  }
  return scratch_row_;
}

void StreamingImplicationPass::ProcessRow(std::span<const ColumnId> row) {
  DMC_CHECK(!finished_);
  DMC_CHECK_LT(rows_seen_, config_.total_rows);

  if (fault_.ok() && fail::Enabled()) {
    Status injected = fail::InjectStatus("streaming.imp.row");
    if (!injected.ok()) fault_ = std::move(injected);
  }
  if (!fault_.ok()) {
    // Same contract as cancellation: count rows so the replay loop stays
    // consistent, do no work; Finish() surfaces the fault.
    ++rows_seen_;
    return;
  }

  const ObserveContext& obs = config_.policy.observe;
  if (!cancelled_ && obs.has_progress()) {
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    if (rows_seen_ % interval == 0) {
      ProgressUpdate update;
      update.phase = config_.phase;
      update.rows_processed = rows_seen_;
      update.total_rows = config_.total_rows;
      update.live_candidates = table_.total_entries();
      update.counter_bytes = table_.bytes();
      update.shard = obs.shard;
      if (!obs.progress(update)) cancelled_ = true;
    }
  }
  if (cancelled_) {
    // Keep counting rows so the caller's replay loop stays consistent,
    // but stop doing any work; Finish() reports the cancellation.
    ++rows_seen_;
    return;
  }

  const auto filtered = FilteredRow(row);

  if (!bitmap_mode_ && config_.policy.bitmap_fallback &&
      config_.total_rows - rows_seen_ <=
          config_.policy.bitmap_max_remaining_rows &&
      table_.bytes() >= config_.policy.memory_threshold_bytes) {
    bitmap_mode_ = true;
  }

  if (bitmap_mode_) {
    tail_.emplace_back(filtered.begin(), filtered.end());
    ++rows_seen_;
    return;
  }

  if (kernel_ == MergeKernel::kSimd) {
    scratch_.BeginRow(filtered, config_.num_columns);
  }
  for (ColumnId cj : filtered) {
    if (!LhsOk(cj)) continue;  // not this shard's antecedent
    if (static_cast<int64_t>(cnt_[cj]) <= config_.max_misses[cj]) {
      MergeWithAdd(cj, filtered);
    } else if (table_.HasList(cj)) {
      MergeMissOnly(cj, filtered);
    }
  }
  for (ColumnId cj : filtered) {
    ++cnt_[cj];
    if (cnt_[cj] == config_.ones[cj] && table_.HasList(cj)) {
      FlushColumn(cj);
    }
  }
  ++rows_seen_;
}

void StreamingImplicationPass::MergeWithAdd(ColumnId cj,
                                            std::span<const ColumnId> row) {
  const uint32_t base_miss = cnt_[cj];
  const int64_t budget = config_.max_misses[cj];
  const auto accept_new = [this, cj](ColumnId ck) {
    return Qualifies(ck, cj);
  };
  const auto keep_on_hit = [](ColumnId, uint32_t) { return true; };
  const auto keep_on_miss = [budget](ColumnId, uint32_t new_miss) {
    return static_cast<int64_t>(new_miss) <= budget;
  };
  if (kernel_ == MergeKernel::kLegacy) {
    LegacyAddMerge(table_, cj, row, base_miss, scratch_, accept_new,
                   keep_on_hit, keep_on_miss);
  } else {
    InPlaceAddMerge(table_, cj, row, base_miss, scratch_, kernel_,
                    accept_new, keep_on_hit, keep_on_miss);
  }
}

void StreamingImplicationPass::MergeMissOnly(ColumnId cj,
                                             std::span<const ColumnId> row) {
  const int64_t budget = config_.max_misses[cj];
  const auto keep_on_hit = [](ColumnId, uint32_t) { return true; };
  const auto keep_on_miss = [budget](ColumnId, uint32_t new_miss) {
    return static_cast<int64_t>(new_miss) <= budget;
  };
  if (kernel_ == MergeKernel::kLegacy) {
    LegacyMissMerge(table_, cj, row, scratch_, keep_on_hit, keep_on_miss);
  } else {
    InPlaceMissMerge(table_, cj, row, scratch_, kernel_, keep_on_hit,
                     keep_on_miss);
  }
}

void StreamingImplicationPass::FlushColumn(ColumnId cj) {
  const auto list = table_.List(cj);
  for (size_t j = 0; j < list.size; ++j) {
    EmitRule(cj, list.cand[j], list.miss[j]);
  }
  table_.Release(cj);
}

void StreamingImplicationPass::EmitRule(ColumnId lhs, ColumnId rhs,
                                        uint32_t misses) {
  if (!config_.emit_zero_miss && misses == 0) return;
  out_.Add(ImplicationRule{lhs, rhs, config_.ones[lhs], misses});
}

void StreamingImplicationPass::RunBitmapPhases() {
  const size_t tn = tail_.size();
  std::vector<int32_t> bm_index(config_.num_columns, -1);
  std::vector<PostingContainer> bitmaps;
  for (size_t t = 0; t < tn; ++t) {
    for (ColumnId c : tail_[t]) {
      if (bm_index[c] < 0) {
        bm_index[c] = static_cast<int32_t>(bitmaps.size());
        bitmaps.emplace_back();
      }
      bitmaps[bm_index[c]].Append(static_cast<uint32_t>(t));
    }
  }
  for (PostingContainer& p : bitmaps) p.Optimize();

  // Phase 1: columns past their budget — finish listed candidates.
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!table_.HasList(c)) continue;
    if (static_cast<int64_t>(cnt_[c]) <= config_.max_misses[c]) continue;
    const PostingContainer* bj =
        bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
    const auto list = table_.List(c);
    for (size_t e = 0; e < list.size; ++e) {
      size_t extra = 0;
      if (bj != nullptr) {
        extra = bm_index[list.cand[e]] >= 0
                    ? bj->AndNotCount(bitmaps[bm_index[list.cand[e]]])
                    : bj->cardinality();
      }
      const int64_t total = static_cast<int64_t>(list.miss[e]) + extra;
      if (total <= config_.max_misses[c]) {
        EmitRule(c, list.cand[e], static_cast<uint32_t>(total));
      }
    }
    table_.Release(c);
  }

  // Phase 2: columns that may still gain candidates. Dense per-column
  // hit counts with a touched list for O(touched) reset (the batch
  // engine's layout; see dmc_base.cc).
  std::vector<uint32_t> hits(config_.num_columns, 0);
  std::vector<uint8_t> seen(config_.num_columns, 0);
  std::vector<ColumnId> touched;
  const auto touch = [&](ColumnId ck) {
    if (!seen[ck]) {
      seen[ck] = 1;
      touched.push_back(ck);
    }
  };
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!LhsOk(c) || !ActiveOk(c) || config_.ones[c] == 0) continue;
    if (static_cast<int64_t>(cnt_[c]) > config_.max_misses[c]) continue;
    touched.clear();
    if (table_.HasList(c)) {
      const auto list = table_.List(c);
      for (size_t e = 0; e < list.size; ++e) {
        touch(list.cand[e]);
        hits[list.cand[e]] = cnt_[c] - list.miss[e];
      }
    }
    if (bm_index[c] >= 0) {
      bitmaps[bm_index[c]].ForEach([&](uint32_t t) {
        for (ColumnId ck : tail_[t]) {
          if (ck != c) {
            touch(ck);
            ++hits[ck];
          }
        }
      });
    }
    const int64_t min_hits =
        static_cast<int64_t>(config_.ones[c]) - config_.max_misses[c];
    for (ColumnId ck : touched) {
      const uint32_t h = hits[ck];
      seen[ck] = 0;
      hits[ck] = 0;
      if (!Qualifies(ck, c)) continue;
      if (static_cast<int64_t>(h) >= min_hits) {
        EmitRule(c, ck, config_.ones[c] - h);
      }
    }
    if (table_.HasList(c)) table_.Release(c);
  }
}

StatusOr<ImplicationRuleSet> StreamingImplicationPass::Finish() {
  DMC_CHECK(!finished_);
  finished_ = true;
  if (!fault_.ok()) return fault_;
  if (cancelled_) {
    return CancelledError("stream cancelled in " +
                          std::string(config_.phase) + " after " +
                          std::to_string(rows_seen_) + " rows");
  }
  if (rows_seen_ != config_.total_rows) {
    return FailedPreconditionError(
        "stream ended early: saw " + std::to_string(rows_seen_) +
        " rows, expected " + std::to_string(config_.total_rows));
  }
  if (bitmap_mode_) RunBitmapPhases();
  return std::move(out_);
}

}  // namespace dmc
