#include "core/streaming_imp.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "observe/progress.h"
#include "util/bitvector.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace dmc {

StreamingImplicationPass::StreamingImplicationPass(Config config)
    : config_(std::move(config)),
      table_(config_.num_columns, config_.bytes_per_entry, &tracker_),
      cnt_(config_.num_columns, 0) {
  DMC_CHECK_EQ(config_.ones.size(), config_.num_columns);
  DMC_CHECK_EQ(config_.max_misses.size(), config_.num_columns);
  all_active_ =
      config_.active.empty() ||
      std::all_of(config_.active.begin(), config_.active.end(),
                  [](uint8_t a) { return a != 0; });
}

bool StreamingImplicationPass::Qualifies(ColumnId ck, ColumnId cj) const {
  return config_.ones[ck] > config_.ones[cj] ||
         (config_.ones[ck] == config_.ones[cj] && ck > cj);
}

std::span<const ColumnId> StreamingImplicationPass::FilteredRow(
    std::span<const ColumnId> row) {
  if (all_active_) return row;
  scratch_row_.clear();
  for (ColumnId c : row) {
    if (config_.active[c]) scratch_row_.push_back(c);
  }
  return scratch_row_;
}

void StreamingImplicationPass::ProcessRow(std::span<const ColumnId> row) {
  DMC_CHECK(!finished_);
  DMC_CHECK_LT(rows_seen_, config_.total_rows);

  if (fault_.ok() && fail::Enabled()) {
    Status injected = fail::InjectStatus("streaming.imp.row");
    if (!injected.ok()) fault_ = std::move(injected);
  }
  if (!fault_.ok()) {
    // Same contract as cancellation: count rows so the replay loop stays
    // consistent, do no work; Finish() surfaces the fault.
    ++rows_seen_;
    return;
  }

  const ObserveContext& obs = config_.policy.observe;
  if (!cancelled_ && obs.has_progress()) {
    const uint64_t interval =
        obs.progress_interval_rows > 0 ? obs.progress_interval_rows : 1;
    if (rows_seen_ % interval == 0) {
      ProgressUpdate update;
      update.phase = config_.phase;
      update.rows_processed = rows_seen_;
      update.total_rows = config_.total_rows;
      update.live_candidates = table_.total_entries();
      update.counter_bytes = table_.bytes();
      update.shard = obs.shard;
      if (!obs.progress(update)) cancelled_ = true;
    }
  }
  if (cancelled_) {
    // Keep counting rows so the caller's replay loop stays consistent,
    // but stop doing any work; Finish() reports the cancellation.
    ++rows_seen_;
    return;
  }

  const auto filtered = FilteredRow(row);

  if (!bitmap_mode_ && config_.policy.bitmap_fallback &&
      config_.total_rows - rows_seen_ <=
          config_.policy.bitmap_max_remaining_rows &&
      table_.bytes() >= config_.policy.memory_threshold_bytes) {
    bitmap_mode_ = true;
  }

  if (bitmap_mode_) {
    tail_.emplace_back(filtered.begin(), filtered.end());
    ++rows_seen_;
    return;
  }

  for (ColumnId cj : filtered) {
    if (static_cast<int64_t>(cnt_[cj]) <= config_.max_misses[cj]) {
      MergeWithAdd(cj, filtered);
    } else if (table_.HasList(cj)) {
      MergeMissOnly(cj, filtered);
    }
  }
  for (ColumnId cj : filtered) {
    ++cnt_[cj];
    if (cnt_[cj] == config_.ones[cj] && table_.HasList(cj)) {
      FlushColumn(cj);
    }
  }
  ++rows_seen_;
}

void StreamingImplicationPass::MergeWithAdd(ColumnId cj,
                                            std::span<const ColumnId> row) {
  if (!table_.HasList(cj)) table_.Create(cj);
  const auto& list = table_.List(cj);
  scratch_.clear();
  const uint32_t base_miss = cnt_[cj];
  const int64_t budget = config_.max_misses[cj];
  size_t i = 0, j = 0;
  while (i < row.size() || j < list.size()) {
    if (j >= list.size() || (i < row.size() && row[i] < list[j].cand)) {
      const ColumnId ck = row[i++];
      if (ck != cj && Qualifies(ck, cj)) {
        scratch_.push_back({ck, base_miss});
      }
    } else if (i >= row.size() || list[j].cand < row[i]) {
      CandidateEntry e = list[j++];
      if (static_cast<int64_t>(e.miss) + 1 <= budget) {
        ++e.miss;
        scratch_.push_back(e);
      }
    } else {
      scratch_.push_back(list[j]);
      ++i;
      ++j;
    }
  }
  table_.Replace(cj, scratch_);
}

void StreamingImplicationPass::MergeMissOnly(ColumnId cj,
                                             std::span<const ColumnId> row) {
  const auto& list = table_.List(cj);
  if (list.empty()) return;
  scratch_.clear();
  const int64_t budget = config_.max_misses[cj];
  size_t i = 0;
  for (size_t j = 0; j < list.size(); ++j) {
    while (i < row.size() && row[i] < list[j].cand) ++i;
    if (i < row.size() && row[i] == list[j].cand) {
      scratch_.push_back(list[j]);
    } else {
      CandidateEntry e = list[j];
      if (static_cast<int64_t>(e.miss) + 1 <= budget) {
        ++e.miss;
        scratch_.push_back(e);
      }
    }
  }
  table_.Replace(cj, scratch_);
}

void StreamingImplicationPass::FlushColumn(ColumnId cj) {
  for (const CandidateEntry& e : table_.List(cj)) {
    EmitRule(cj, e.cand, e.miss);
  }
  table_.Release(cj);
}

void StreamingImplicationPass::EmitRule(ColumnId lhs, ColumnId rhs,
                                        uint32_t misses) {
  if (!config_.emit_zero_miss && misses == 0) return;
  out_.Add(ImplicationRule{lhs, rhs, config_.ones[lhs], misses});
}

void StreamingImplicationPass::RunBitmapPhases() {
  const size_t tn = tail_.size();
  std::vector<int32_t> bm_index(config_.num_columns, -1);
  std::vector<BitVector> bitmaps;
  for (size_t t = 0; t < tn; ++t) {
    for (ColumnId c : tail_[t]) {
      if (bm_index[c] < 0) {
        bm_index[c] = static_cast<int32_t>(bitmaps.size());
        bitmaps.emplace_back(tn);
      }
      bitmaps[bm_index[c]].Set(t);
    }
  }

  // Phase 1: columns past their budget — finish listed candidates.
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!table_.HasList(c)) continue;
    if (static_cast<int64_t>(cnt_[c]) <= config_.max_misses[c]) continue;
    const BitVector* bj = bm_index[c] >= 0 ? &bitmaps[bm_index[c]] : nullptr;
    for (const CandidateEntry& e : table_.List(c)) {
      size_t extra = 0;
      if (bj != nullptr) {
        extra = bm_index[e.cand] >= 0
                    ? bj->AndNotCount(bitmaps[bm_index[e.cand]])
                    : bj->Count();
      }
      const int64_t total = static_cast<int64_t>(e.miss) + extra;
      if (total <= config_.max_misses[c]) {
        EmitRule(c, e.cand, static_cast<uint32_t>(total));
      }
    }
    table_.Release(c);
  }

  // Phase 2: columns that may still gain candidates.
  std::unordered_map<ColumnId, uint32_t> hits;
  for (ColumnId c = 0; c < config_.num_columns; ++c) {
    if (!ActiveOk(c) || config_.ones[c] == 0) continue;
    if (static_cast<int64_t>(cnt_[c]) > config_.max_misses[c]) continue;
    hits.clear();
    if (table_.HasList(c)) {
      for (const CandidateEntry& e : table_.List(c)) {
        hits[e.cand] = cnt_[c] - e.miss;
      }
    }
    if (bm_index[c] >= 0) {
      for (uint32_t t : bitmaps[bm_index[c]].ToIndices()) {
        for (ColumnId ck : tail_[t]) {
          if (ck != c) ++hits[ck];
        }
      }
    }
    const int64_t min_hits =
        static_cast<int64_t>(config_.ones[c]) - config_.max_misses[c];
    for (const auto& [ck, h] : hits) {
      if (!Qualifies(ck, c)) continue;
      if (static_cast<int64_t>(h) >= min_hits) {
        EmitRule(c, ck, config_.ones[c] - h);
      }
    }
    if (table_.HasList(c)) table_.Release(c);
  }
}

StatusOr<ImplicationRuleSet> StreamingImplicationPass::Finish() {
  DMC_CHECK(!finished_);
  finished_ = true;
  if (!fault_.ok()) return fault_;
  if (cancelled_) {
    return CancelledError("stream cancelled in " +
                          std::string(config_.phase) + " after " +
                          std::to_string(rows_seen_) + " rows");
  }
  if (rows_seen_ != config_.total_rows) {
    return FailedPreconditionError(
        "stream ended early: saw " + std::to_string(rows_seen_) +
        " rows, expected " + std::to_string(config_.total_rows));
  }
  if (bitmap_mode_) RunBitmapPhases();
  return std::move(out_);
}

}  // namespace dmc
