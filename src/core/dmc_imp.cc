#include "core/dmc_imp.h"

#include <algorithm>

#include "core/dmc_base.h"
#include "core/kernels.h"
#include "core/miss_counter_table.h"
#include "core/thresholds.h"
#include "matrix/row_order.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace dmc {

namespace {

std::vector<RowId> MakeOrder(const BinaryMatrix& m, RowOrderPolicy policy) {
  switch (policy) {
    case RowOrderPolicy::kIdentity:
      return IdentityOrder(m);
    case RowOrderPolicy::kDensityBuckets:
      return DensityBucketOrder(m).order;
    case RowOrderPolicy::kExactSort:
      return SortedByDensityOrder(m);
  }
  return IdentityOrder(m);
}

}  // namespace

namespace {

StatusOr<ImplicationRuleSet> MineImplicationsImpl(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const std::vector<uint8_t>* lhs_shard, MiningStats* stats) {
  if (!(options.min_confidence > 0.0) || options.min_confidence > 1.0) {
    return InvalidArgumentError("min_confidence must be in (0, 1]");
  }
  MiningStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MiningStats{};

  const DmcPolicy& policy = options.policy;
  const ObserveContext& obs = policy.observe;
  const double minconf = options.min_confidence;
  const ColumnId num_cols = matrix.num_columns();
  const auto& ones = matrix.column_ones();

  Stopwatch total_sw;
  // Pre-scan: in the two-pass disk setting this is the first scan (count
  // ones(c), bucket rows by density); here ones(c) comes with the matrix
  // and the pre-scan cost is the order construction.
  Stopwatch prescan_sw;
  std::vector<RowId> order;
  {
    ScopedSpan span(obs.trace, "imp/prescan", obs.trace_lane);
    order = MakeOrder(matrix, policy.row_order);
  }
  stats->prescan_seconds = prescan_sw.ElapsedSeconds();
  stats->kernel = KernelName(ResolveKernel(policy.kernel));

  MemoryTracker tracker;
  ImplicationRuleSet out;

  const bool run_hundred =
      policy.hundred_percent_phase || minconf == 1.0;

  if (run_hundred) {
    std::vector<uint8_t> active(num_cols, 0);
    for (ColumnId c = 0; c < num_cols; ++c) active[c] = ones[c] > 0;
    const std::vector<int64_t> max_misses(num_cols, 0);
    ImplicationPassInput input;
    input.matrix = &matrix;
    input.order = order;
    input.max_misses = &max_misses;
    input.active = &active;
    input.lhs_shard = lhs_shard;
    input.emit_zero_miss = true;
    input.bytes_per_entry = MissCounterTable::kEntryBytesIdOnly;
    input.policy = &policy;
    input.tracker = &tracker;
    if (policy.record_history) {
      input.memory_history = &stats->memory_history;
      input.candidate_history = &stats->candidate_history;
    }
    input.phase = "hundred_phase";
    ImplicationPassResult res;
    {
      ScopedSpan span(obs.trace, "imp/hundred_phase", obs.trace_lane);
      res = RunImplicationPass(input, &out);
    }
    stats->hundred_base_seconds = res.base_seconds;
    stats->hundred_bitmap_seconds = res.bitmap_seconds;
    stats->hundred_bitmap_triggered = res.bitmap_used;
    stats->peak_candidates =
        std::max(stats->peak_candidates, res.peak_entries);
    stats->rules_from_hundred_phase = out.size();
    if (res.cancelled) {
      return CancelledError("mine cancelled in hundred_phase after " +
                            std::to_string(res.rows_processed) + " rows");
    }
  }

  if (minconf < 1.0) {
    std::vector<uint8_t> active(num_cols, 0);
    size_t cut = 0;
    for (ColumnId c = 0; c < num_cols; ++c) {
      if (ones[c] == 0) continue;
      if (run_hundred && !ColumnSurvivesConfidenceCutoff(ones[c], minconf)) {
        ++cut;
        continue;
      }
      active[c] = 1;
    }
    stats->columns_cut_off = cut;

    std::vector<int64_t> max_misses(num_cols, 0);
    for (ColumnId c = 0; c < num_cols; ++c) {
      max_misses[c] = MaxMissesForConfidence(ones[c], minconf);
    }
    ImplicationPassInput input;
    input.matrix = &matrix;
    input.order = order;
    input.max_misses = &max_misses;
    input.active = &active;
    input.lhs_shard = lhs_shard;
    input.emit_zero_miss = !run_hundred;
    input.bytes_per_entry = MissCounterTable::kEntryBytesWithCounters;
    input.policy = &policy;
    input.tracker = &tracker;
    if (policy.record_history) {
      input.memory_history = &stats->memory_history;
      input.candidate_history = &stats->candidate_history;
    }
    input.phase = "sub_phase";
    const size_t before = out.size();
    ImplicationPassResult res;
    {
      ScopedSpan span(obs.trace, "imp/sub_phase", obs.trace_lane);
      res = RunImplicationPass(input, &out);
    }
    stats->sub_base_seconds = res.base_seconds;
    stats->sub_bitmap_seconds = res.bitmap_seconds;
    stats->sub_bitmap_triggered = res.bitmap_used;
    stats->sub_bitmap_rows = res.bitmap_rows;
    stats->peak_candidates =
        std::max(stats->peak_candidates, res.peak_entries);
    stats->rules_from_sub_phase = out.size() - before;
    if (res.cancelled) {
      return CancelledError("mine cancelled in sub_phase after " +
                            std::to_string(res.rows_processed) + " rows");
    }
  }

  out.Canonicalize();
  stats->peak_counter_bytes = tracker.peak_bytes();
  stats->total_seconds = total_sw.ElapsedSeconds();
  RecordToRegistry(obs.metrics, "imp", *stats);
  return out;
}

}  // namespace

StatusOr<ImplicationRuleSet> MineImplications(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    MiningStats* stats) {
  return MineImplicationsImpl(matrix, options, nullptr, stats);
}

StatusOr<ImplicationRuleSet> MineImplicationsSharded(
    const BinaryMatrix& matrix, const ImplicationMiningOptions& options,
    const std::vector<uint8_t>& lhs_shard, MiningStats* stats) {
  if (lhs_shard.size() != matrix.num_columns()) {
    return InvalidArgumentError("lhs_shard size must match column count");
  }
  return MineImplicationsImpl(matrix, options, &lhs_shard, stats);
}

}  // namespace dmc
