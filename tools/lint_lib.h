// Project-invariant static checker ("dmc_lint") — token-based rule
// engine (v2).
//
// Lints the DMC source tree for invariants the compiler cannot (or does
// not, on every toolchain) enforce. Rules run over a real C++ token
// stream (tools/lint_lexer.h) rather than substring scans, so raw
// string literals, line-spliced comments, encoding prefixes and digit
// separators can never produce phantom matches. The original v1
// substring engine is frozen in tools/lint_legacy.h as the reference
// for the differential parity test.
//
//   include-guard     every header has #pragma once or a matching
//                     #ifndef/#define guard near the top
//   banned-rand       no rand()/srand() — randomized code must go through
//                     dmc::Rng (util/random.h) so runs are reproducible
//   banned-stdio      no std::cout/std::cerr/printf-family output in
//                     library code — use DMC_LOG (util/logging.h); the
//                     logging backend and tools/ CLIs are whitelisted
//   banned-file-stream  no std::ofstream/fopen in library code — file
//                     exports go through src/observe (stats_export.h);
//                     src/observe and tools/ CLIs are whitelisted
//   banned-raw-unlink no raw unlink/rename/remove (std::, :: or
//                     unqualified) — file replacement goes through
//                     util/atomic_io.h so outputs are never torn;
//                     std::filesystem::remove stays legal for deliberate
//                     deletes, and util/atomic_io.* is whitelisted
//   banned-hot-path-map  no std::map/std::unordered_map (or multimap
//                     variants) in the hot-path mining TUs
//                     (core/dmc_base.cc, core/dmc_sim_pass.cc,
//                     core/kernels.cc) — node-based containers allocate
//                     per element and chase pointers; use dense vectors
//                     with a touched-list reset instead
//   banned-raw-posting  no std::vector<std::vector<RowId>> (or the raw
//                     uint32_t spelling) outside src/postings/ — nested
//                     row-id vectors are the hand-rolled posting-list
//                     shape that used to be duplicated across the
//                     matrix, the counter arena and the incremental
//                     miner; per-column postings go through
//                     PostingContainer (postings/posting_container.h).
//                     Row-major vector<vector<ColumnId>> data stays
//                     legal; matrix/row_order.cc's radix buckets and
//                     datagen/ are whitelisted
//   banned-ruleset-mutation  no mutable_rules()/mutable_pairs() calls
//                     outside src/rules/ and src/incr/ — mined rule sets
//                     are immutable downstream so the incremental
//                     engine's snapshots and the serving index cannot
//                     drift from the counts they were built on
//   discarded-status  a call to a Status/StatusOr-returning function used
//                     as a bare statement (result ignored)
//   banned-raw-socket no raw socket/accept/recv/send calls (:: or
//                     unqualified) outside src/serve/net_* — the BSD
//                     socket primitives live behind the Status-returning
//                     wrappers in serve/net_socket.h, the same way
//                     atomic_io.cc owns unlink/rename; member calls and
//                     namespace-qualified wrappers stay legal
//   banned-raw-process  no raw fork/vfork/execv*/execl*/waitpid/wait4/
//                     kill calls (:: or unqualified) outside
//                     src/shard/process_* — pid lifetimes, signal
//                     delivery and EINTR reaping live behind the
//                     wrappers in shard/process_control.h, the same way
//                     serve/net_* owns sockets; member calls and
//                     namespace-qualified wrappers stay legal
//   banned-raw-lock   no bare .lock()/.unlock() member calls outside
//                     src/util/ — critical sections must use
//                     dmc::MutexLock (util/thread_annotations.h) so
//                     clang -Wthread-safety can see them
//   unannotated-mutex a member or variable of a std:: mutex type is
//                     invisible to thread-safety analysis; declare it as
//                     dmc::Mutex, or reference it from a
//                     DMC_GUARDED_BY/DMC_REQUIRES annotation
//   atomic-ordering-audit  in the audited hot-path TUs every named
//                     atomic operation (.load/.store/.fetch_*/...)
//                     must spell an explicit std::memory_order —
//                     a defaulted seq_cst is treated as "not thought
//                     about", not "strongest therefore safe"
//
// Suppression: append `// dmc_lint: ignore` to a line to skip it, or put
// `dmc_lint: ignore-file` anywhere in a file to skip the whole file.
//
// The engine is a library so the lint test suite can drive individual
// rules against fixture files; the `dmc_lint` binary wraps LintTree().

#ifndef DMC_TOOLS_LINT_LIB_H_
#define DMC_TOOLS_LINT_LIB_H_

#include <set>
#include <string>
#include <vector>

namespace dmc {
namespace lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Returns `content` with comments and string/char literals blanked out
/// (replaced by spaces, newlines preserved) so token scans cannot match
/// inside them. Built on the lexer, so raw strings and line-spliced
/// comments are blanked correctly. Exposed for tests.
std::string ScrubSource(const std::string& content);

/// Harvests the names of functions declared to return Status or
/// StatusOr<...> from source text (token scan; literals and comments
/// can never contribute names).
std::set<std::string> CollectStatusFunctions(const std::string& content);

/// Lints one file's content. `path` selects which rules apply (header
/// rules for .h, stdio rules outside the logging backend, audited-TU
/// rules by suffix, ...); `status_functions` is the registry used by
/// the discarded-status rule.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::set<std::string>& status_functions);

/// Walks `root` (a directory or a single file), harvests the
/// Status-function registry from every source file, then lints every
/// .h/.cc/.cpp file. Findings are sorted by (file, line).
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: [rule] message" for diagnostics.
std::string FormatFinding(const Finding& f);

}  // namespace lint
}  // namespace dmc

#endif  // DMC_TOOLS_LINT_LIB_H_
