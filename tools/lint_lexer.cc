#include "tools/lint_lexer.h"

#include <cctype>

namespace dmc {
namespace lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Splice-aware cursor over the original text. The "effective" stream
/// is the source with every backslash-newline (and backslash-CR-LF)
/// removed, as in translation phase 2; Peek/Get operate on that stream
/// while `pos()` always reports original byte offsets. Raw-string
/// bodies bypass the splice logic via the Raw* methods.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  size_t pos() const { return i_; }
  int line() const { return line_; }

  bool AtEnd() {
    SkipSplices();
    return i_ >= s_.size();
  }

  /// Effective character `ahead` positions from here ('\0' past the end).
  char Peek(size_t ahead = 0) {
    size_t j = i_;
    int dummy = 0;
    for (size_t k = 0; k <= ahead; ++k) {
      SkipSplicesAt(&j, &dummy);
      if (j >= s_.size()) return '\0';
      if (k == ahead) return s_[j];
      if (s_[j] == '\n') ++dummy;
      ++j;
    }
    return '\0';
  }

  /// Consumes and returns the current effective character.
  char Get() {
    SkipSplices();
    const char c = s_[i_];
    if (c == '\n') ++line_;
    ++i_;
    return c;
  }

  // Raw access (no splice removal) for raw-string bodies.
  bool RawAtEnd() const { return i_ >= s_.size(); }
  char RawPeek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  char RawGet() {
    const char c = s_[i_];
    if (c == '\n') ++line_;
    ++i_;
    return c;
  }

 private:
  void SkipSplices() { SkipSplicesAt(&i_, &line_); }

  void SkipSplicesAt(size_t* j, int* line) const {
    while (*j + 1 < s_.size() && s_[*j] == '\\') {
      if (s_[*j + 1] == '\n') {
        *j += 2;
        ++*line;
      } else if (s_[*j + 1] == '\r' && *j + 2 < s_.size() &&
                 s_[*j + 2] == '\n') {
        *j += 3;
        ++*line;
      } else {
        break;
      }
    }
  }

  const std::string& s_;
  size_t i_ = 0;
  int line_ = 1;
};

/// True when `prefix` is a valid string-literal encoding prefix.
bool IsEncodingPrefix(const std::string& prefix) {
  return prefix == "u8" || prefix == "u" || prefix == "U" || prefix == "L";
}

/// True when `prefix` marks a raw string (R with optional encoding).
bool IsRawPrefix(const std::string& prefix) {
  return prefix == "R" || prefix == "uR" || prefix == "u8R" ||
         prefix == "UR" || prefix == "LR";
}

}  // namespace

std::vector<Token> LexSource(const std::string& content) {
  std::vector<Token> tokens;
  Cursor cur(content);

  auto begin_token = [&](TokenKind kind) {
    Token t;
    t.kind = kind;
    t.offset = cur.pos();
    t.line = cur.line();
    return t;
  };
  auto finish = [&](Token t) {
    t.end_offset = cur.pos();
    tokens.push_back(std::move(t));
  };

  // Consumes a quoted literal body (after the opening quote is already in
  // `t.text`) up to the matching unescaped quote. Newlines are tolerated
  // (unterminated literals extend; the engine never crashes on bad input).
  auto lex_quoted = [&](Token& t, char quote) {
    while (!cur.AtEnd()) {
      const char c = cur.Get();
      t.text.push_back(c);
      if (c == '\\' && !cur.AtEnd()) {
        t.text.push_back(cur.Get());  // escape: next char is content
        continue;
      }
      if (c == quote) break;
    }
  };

  // Consumes R"delim( ... )delim" starting at the opening quote (prefix
  // already in t.text). Raw bodies read original bytes: no splices.
  auto lex_raw_string = [&](Token& t) {
    t.text.push_back(cur.Get());  // the opening '"'
    std::string delim;
    while (!cur.RawAtEnd()) {
      const char c = cur.RawPeek();
      if (c == '(' || c == ')' || c == '"' || c == '\\' || c == '\n' ||
          delim.size() >= 16) {
        break;
      }
      delim.push_back(cur.RawGet());
      t.text.push_back(delim.back());
    }
    if (cur.RawAtEnd() || cur.RawPeek() != '(') return;  // malformed; stop
    t.text.push_back(cur.RawGet());                      // '('
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!cur.RawAtEnd()) {
      const char c = cur.RawGet();
      t.text.push_back(c);
      window.push_back(c);
      if (window.size() > closer.size()) {
        window.erase(window.begin());
      }
      if (window == closer) return;
    }
  };

  while (!cur.AtEnd()) {
    const char c = cur.Peek();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.Get();
      continue;
    }

    // Comments.
    if (c == '/' && cur.Peek(1) == '/') {
      Token t = begin_token(TokenKind::kComment);
      t.text.push_back(cur.Get());
      t.text.push_back(cur.Get());
      // A line splice inside the comment extends it — Peek sees the
      // effective stream, so the spliced newline never terminates it.
      while (!cur.AtEnd() && cur.Peek() != '\n') t.text.push_back(cur.Get());
      finish(std::move(t));
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      Token t = begin_token(TokenKind::kComment);
      t.text.push_back(cur.Get());
      t.text.push_back(cur.Get());
      // C++ block comments do not nest: the first */ ends it.
      while (!cur.AtEnd()) {
        if (cur.Peek() == '*' && cur.Peek(1) == '/') {
          t.text.push_back(cur.Get());
          t.text.push_back(cur.Get());
          break;
        }
        t.text.push_back(cur.Get());
      }
      finish(std::move(t));
      continue;
    }

    // Identifiers — possibly a string/char literal encoding prefix.
    if (IsIdentStart(c)) {
      Token t = begin_token(TokenKind::kIdentifier);
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) {
        t.text.push_back(cur.Get());
      }
      if (cur.Peek() == '"' && IsRawPrefix(t.text)) {
        t.kind = TokenKind::kString;
        lex_raw_string(t);
        finish(std::move(t));
        continue;
      }
      if (cur.Peek() == '"' && IsEncodingPrefix(t.text)) {
        t.kind = TokenKind::kString;
        t.text.push_back(cur.Get());
        lex_quoted(t, '"');
        finish(std::move(t));
        continue;
      }
      if (cur.Peek() == '\'' && IsEncodingPrefix(t.text)) {
        t.kind = TokenKind::kCharLiteral;
        t.text.push_back(cur.Get());
        lex_quoted(t, '\'');
        finish(std::move(t));
        continue;
      }
      finish(std::move(t));
      continue;
    }

    // pp-numbers (also covers `.5`); the `'` digit separator is part of
    // the number when followed by an alphanumeric, so it never opens a
    // character literal.
    if (IsDigit(c) || (c == '.' && IsDigit(cur.Peek(1)))) {
      Token t = begin_token(TokenKind::kNumber);
      t.text.push_back(cur.Get());
      while (!cur.AtEnd()) {
        const char n = cur.Peek();
        if (IsIdentChar(n) || n == '.') {
          t.text.push_back(cur.Get());
          if ((n == 'e' || n == 'E' || n == 'p' || n == 'P') &&
              (cur.Peek() == '+' || cur.Peek() == '-')) {
            t.text.push_back(cur.Get());
          }
          continue;
        }
        if (n == '\'' && IsIdentChar(cur.Peek(1))) {
          t.text.push_back(cur.Get());
          t.text.push_back(cur.Get());
          continue;
        }
        break;
      }
      finish(std::move(t));
      continue;
    }

    // Plain string / char literals.
    if (c == '"') {
      Token t = begin_token(TokenKind::kString);
      t.text.push_back(cur.Get());
      lex_quoted(t, '"');
      finish(std::move(t));
      continue;
    }
    if (c == '\'') {
      Token t = begin_token(TokenKind::kCharLiteral);
      t.text.push_back(cur.Get());
      lex_quoted(t, '\'');
      finish(std::move(t));
      continue;
    }

    // Punctuators: combine only `::` and `->` (the lint rules need
    // them whole); every other byte is one token, matching the v1
    // engine's per-character template/paren walks.
    Token t = begin_token(TokenKind::kPunct);
    const char first = cur.Get();
    t.text.push_back(first);
    if ((first == ':' && cur.Peek() == ':') ||
        (first == '-' && cur.Peek() == '>')) {
      t.text.push_back(cur.Get());
    }
    finish(std::move(t));
  }
  return tokens;
}

std::string ScrubWithLexer(const std::string& content) {
  std::string out = content;
  for (const Token& t : LexSource(content)) {
    if (t.kind != TokenKind::kComment && t.kind != TokenKind::kString &&
        t.kind != TokenKind::kCharLiteral) {
      continue;
    }
    for (size_t i = t.offset; i < t.end_offset && i < out.size(); ++i) {
      if (out[i] != '\n') out[i] = ' ';
    }
  }
  return out;
}

}  // namespace lint
}  // namespace dmc
