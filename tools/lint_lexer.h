// Minimal C++ lexer for the dmc_lint v2 rule engine.
//
// Produces a flat token stream from raw source text, handling the
// lexical constructs the old substring scanner got wrong:
//
//   * line splices: backslash-newline is removed inside any token or
//     comment (a // comment ending in `\` swallows the next line);
//   * raw string literals: R"delim( ... )delim" with arbitrary
//     delimiters — inner quotes and backslashes are content, and line
//     splices are NOT processed inside the raw body (per the standard);
//   * encoding prefixes on string/char literals: u8 u U L, also
//     combined with R for raw strings;
//   * pp-numbers with digit separators (1'000'000), hex/binary
//     prefixes, and exponent signs (1e+5, 0x1p-3) — the `'` inside a
//     number never opens a character literal;
//   * comments: // to (logical) end of line, /* to the first */ (C++
//     block comments do not nest — /* /* */ ends at the first */).
//
// Tokens carry their original byte span and 1-based starting line, so
// findings point at real source locations and the scrubber can blank
// exactly the literal/comment bytes. Multi-character punctuators are
// combined only where a lint rule needs the distinction (`::`, `->`);
// everything else is one token per character, which keeps template
// argument skipping (`<`...`>` depth counting) identical to the v1
// engine's character walk.
//
// This is a lexer, not a preprocessor: directives are lexed as ordinary
// tokens (`#`, `ifndef`, name, ...); rules that care group tokens by
// line and look for a leading `#`.

#ifndef DMC_TOOLS_LINT_LEXER_H_
#define DMC_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace dmc {
namespace lint {

enum class TokenKind {
  kIdentifier,   // [A-Za-z_][A-Za-z0-9_]*
  kNumber,       // pp-number (ints, floats, separators, suffixes)
  kString,       // "..." incl. prefixes and raw strings
  kCharLiteral,  // '...'
  kPunct,        // one punctuator ("::" and "->" combined, else 1 char)
  kComment,      // // or /* */, text includes the markers
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  /// Spelling with line splices removed (raw-string bodies verbatim).
  std::string text;
  /// Original byte span [offset, end_offset) in the unmodified source.
  size_t offset = 0;
  size_t end_offset = 0;
  /// 1-based source line of the token's first byte.
  int line = 1;
};

/// Lexes `content` into tokens (comments included; whitespace dropped).
/// Never fails: unterminated literals/comments extend to end of input,
/// and bytes that fit nothing become single-char kPunct tokens.
std::vector<Token> LexSource(const std::string& content);

/// `content` with every comment, string literal and char literal blanked
/// to spaces (newlines preserved), built on LexSource — the raw-string-
/// and splice-correct replacement for the v1 scrubber.
std::string ScrubWithLexer(const std::string& content);

}  // namespace lint
}  // namespace dmc

#endif  // DMC_TOOLS_LINT_LEXER_H_
