#!/usr/bin/env bash
# coverage.sh — line-coverage gate for the mining core.
#
# Builds the `coverage` preset (--coverage instrumentation, -O0), runs
# the full test suite, aggregates gcov line rates for src/core/ and
# src/incr/, writes an lcov-style per-file summary to
# build-coverage/coverage_summary.txt, and fails if the aggregate line
# coverage drops below the floor recorded in tools/coverage_floor.txt.
#
# Uses the stock `gcov` text output only — no lcov/gcovr dependency.
#
# Usage:
#   tools/coverage.sh              # build + test + gate
#   tools/coverage.sh --no-build   # reuse an existing instrumented build
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
build_dir="${repo_root}/build-coverage"
jobs="$(nproc 2>/dev/null || echo 4)"
floor_file="${repo_root}/tools/coverage_floor.txt"

if [[ "${1:-}" != "--no-build" ]]; then
  cmake --preset coverage >/dev/null
  cmake --build --preset coverage -j "${jobs}"
  # Stale counters from earlier runs would double-count.
  find "${build_dir}" -name '*.gcda' -delete
  ctest --preset coverage -j "${jobs}"
fi

# Every .gcda under the instrumented core/incr object dirs feeds one gcov
# invocation; `gcov -n` prints per-source "File/Lines executed" pairs
# without dropping .gcov files anywhere.
summary="${build_dir}/coverage_summary.txt"
gcda_list="$(find "${build_dir}/src/core" "${build_dir}/src/incr" \
             -name '*.gcda' 2>/dev/null | sort)"
if [[ -z "${gcda_list}" ]]; then
  echo "coverage.sh: no .gcda files under ${build_dir}/src/{core,incr}" >&2
  echo "(build with the coverage preset and run ctest first)" >&2
  exit 1
fi

# shellcheck disable=SC2086
gcov -n ${gcda_list} 2>/dev/null | awk -v repo="${repo_root}/" '
  # gcov output alternates: File <q>path<q> / Lines executed:PP% of N.
  /^File / {
    file = substr($0, 7, length($0) - 7)   # strip File + quotes
    sub(repo, "", file)
    keep = (file ~ /^src\/(core|incr)\//)
  }
  /^Lines executed:/ {
    if (keep) {
      line = $0
      sub(/^Lines executed:/, "", line)
      split(line, parts, "% of ")
      covered[file] += (parts[1] + 0) * (parts[2] + 0) / 100.0
      total[file] += parts[2] + 0
      keep = 0
    }
  }
  END {
    grand_cov = 0
    grand_tot = 0
    for (f in total) {
      printf "%-52s %7.2f%% of %5d lines\n", f, \
             total[f] ? 100.0 * covered[f] / total[f] : 0, total[f]
      grand_cov += covered[f]
      grand_tot += total[f]
    }
    printf "TOTAL %.2f %d\n", \
           grand_tot ? 100.0 * grand_cov / grand_tot : 0, grand_tot
  }' | sort > "${summary}"

total_line="$(grep '^TOTAL ' "${summary}")"
pct="$(echo "${total_line}" | awk '{print $2}')"
lines="$(echo "${total_line}" | awk '{print $3}')"
floor="$(grep -v '^#' "${floor_file}" | head -1 | tr -d '[:space:]')"

echo "---- coverage summary (src/core + src/incr) ----"
grep -v '^TOTAL ' "${summary}"
echo "TOTAL: ${pct}% of ${lines} instrumented lines (floor: ${floor}%)"

awk -v pct="${pct}" -v floor="${floor}" 'BEGIN { exit !(pct+0 >= floor+0) }' || {
  echo "coverage gate FAILED: ${pct}% < floor ${floor}%" >&2
  echo "(raise tests or, if a deliberate trade-off, lower ${floor_file})" >&2
  exit 1
}
echo "coverage gate OK"
