// dmc_lint: static checker for DMC project invariants.
//
// Usage: dmc_lint <file-or-dir> [<file-or-dir> ...]
//
// Walks each argument (recursively for directories), lints every
// .h/.cc/.cpp file against the rules in tools/lint_lib.h, prints one
// line per finding, and exits nonzero when anything fires. Registered
// as the `dmc_lint` ctest over the whole src/ tree, so tier-1 fails on
// violations.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint_lib.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dmc_lint <file-or-dir> [<file-or-dir> ...]\n"
                 "rules: include-guard banned-rand banned-stdio "
                 "banned-file-stream banned-raw-unlink\n"
                 "       banned-hot-path-map banned-ruleset-mutation "
                 "discarded-status\n"
                 "       banned-raw-lock unannotated-mutex "
                 "atomic-ordering-audit banned-raw-posting\n"
                 "suppress one line with `// dmc_lint: ignore`, a file "
                 "with `dmc_lint: ignore-file`\n");
    return 2;
  }
  std::vector<dmc::lint::Finding> findings;
  for (int i = 1; i < argc; ++i) {
    auto tree_findings = dmc::lint::LintTree(argv[i]);
    findings.insert(findings.end(), tree_findings.begin(),
                    tree_findings.end());
  }
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s\n", dmc::lint::FormatFinding(f).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "dmc_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("dmc_lint: clean\n");
  return 0;
}
