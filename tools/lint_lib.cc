#include "tools/lint_lib.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "tools/lint_lexer.h"

namespace dmc {
namespace lint {

namespace {

bool HasExtension(const std::string& path, const char* ext) {
  const size_t n = std::strlen(ext);
  return path.size() >= n && path.compare(path.size() - n, n, ext) == 0;
}

bool IsSourcePath(const std::string& path) {
  return HasExtension(path, ".h") || HasExtension(path, ".cc") ||
         HasExtension(path, ".cpp");
}

// Splits into lines (without trailing '\n'); line i is 1-based line i+1.
std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Tokens touch with no whitespace/comment between them. The receiver
/// chain walk in discarded-status is adjacency-sensitive (as the v1
/// character walk was): `state.Frob()` is one chain, `return Frob()`
/// is not.
bool Adjacent(const Token& a, const Token& b) {
  return a.end_offset == b.offset;
}

/// Index of the token holding the ')' matching the '(' at `open`,
/// or npos. Parens inside literals are literal content, not tokens.
size_t MatchParen(const std::vector<Token>& code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], "(")) ++depth;
    if (IsPunct(code[i], ")") && --depth == 0) return i;
  }
  return std::string::npos;
}

/// True when the ban on the identifier at code[i] applies: the name is
/// unqualified (including member access — `obj.printf(...)` is still
/// banned) or qualified exactly `std::`. A global `::rand` or a foreign
/// `Foo::rand` names something else and is left alone.
bool BanQualifierApplies(const std::vector<Token>& code, size_t i) {
  if (i >= 1 && IsPunct(code[i - 1], "::")) {
    return i >= 2 && IsIdent(code[i - 2], "std");
  }
  return true;
}

/// True when code[i] is written with an explicit std:: qualifier.
bool IsStdQualified(const std::vector<Token>& code, size_t i) {
  return i >= 2 && IsPunct(code[i - 1], "::") && IsIdent(code[i - 2], "std");
}

/// Per-file context shared by every rule: the comment-free token
/// stream, plus the raw-line suppression map.
struct FileCtx {
  const std::string& path;
  std::vector<Token> code;       // comments dropped; literals kept
  std::vector<bool> suppressed;  // `// dmc_lint: ignore` per raw line

  bool Suppressed(int line) const {
    return line >= 1 && static_cast<size_t>(line - 1) < suppressed.size() &&
           suppressed[line - 1];
  }
  bool PathContains(const char* s) const {
    return path.find(s) != std::string::npos;
  }
  bool PathEndsWith(const char* s) const { return HasExtension(path, s); }
};

void CheckIncludeGuard(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (!ctx.PathEndsWith(".h")) return;
  if (!ctx.suppressed.empty() && ctx.suppressed[0]) return;
  // First two significant lines: a line counts once it carries a token
  // that is neither comment (already dropped) nor literal — matching
  // the v1 notion of "non-blank after scrubbing".
  std::vector<std::vector<Token>> lines;
  int cur_line = -1;
  bool cur_significant = false;
  auto flush = [&](std::vector<Token>&& toks) {
    if (cur_significant && lines.size() < 2) lines.push_back(std::move(toks));
  };
  std::vector<Token> cur;
  for (const Token& t : ctx.code) {
    if (t.line != cur_line) {
      flush(std::move(cur));
      cur.clear();
      cur_line = t.line;
      cur_significant = false;
    }
    if (t.kind != TokenKind::kString && t.kind != TokenKind::kCharLiteral) {
      cur_significant = true;
    }
    cur.push_back(t);
  }
  flush(std::move(cur));

  auto rest_of_line = [](const std::vector<Token>& toks, size_t from) {
    std::string joined;
    for (size_t i = from; i < toks.size(); ++i) {
      if (!joined.empty()) joined.push_back(' ');
      joined += toks[i].text;
    }
    return joined;
  };

  if (!lines.empty()) {
    const auto& l1 = lines[0];
    if (l1.size() >= 3 && IsPunct(l1[0], "#") && IsIdent(l1[1], "pragma") &&
        IsIdent(l1[2], "once")) {
      return;
    }
    if (lines.size() == 2) {
      const auto& l2 = lines[1];
      if (l1.size() >= 3 && IsPunct(l1[0], "#") && IsIdent(l1[1], "ifndef") &&
          l2.size() >= 3 && IsPunct(l2[0], "#") && IsIdent(l2[1], "define") &&
          rest_of_line(l1, 2) == rest_of_line(l2, 2)) {
        return;
      }
    }
  }
  findings->push_back(
      {ctx.path, 1, "include-guard",
       "header must start with #pragma once or a matching "
       "#ifndef/#define include guard"});
}

void CheckBannedTokens(const FileCtx& ctx, std::vector<Finding>* findings) {
  struct Ban {
    const char* token;
    bool needs_call;  // must be followed by '('
    const char* rule;
    const char* message;
  };
  static const Ban kBans[] = {
      {"rand", true, "banned-rand",
       "rand() is banned; use dmc::Rng (util/random.h) for reproducibility"},
      {"srand", true, "banned-rand",
       "srand() is banned; seed dmc::Rng explicitly instead"},
      {"printf", true, "banned-stdio",
       "printf in library code is banned; use DMC_LOG (util/logging.h)"},
      {"fprintf", true, "banned-stdio",
       "fprintf in library code is banned; use DMC_LOG (util/logging.h)"},
      {"puts", true, "banned-stdio",
       "puts in library code is banned; use DMC_LOG (util/logging.h)"},
      {"cout", false, "banned-stdio",
       "std::cout in library code is banned; use DMC_LOG (util/logging.h)"},
      {"cerr", false, "banned-stdio",
       "std::cerr in library code is banned; use DMC_LOG (util/logging.h)"},
      {"ofstream", false, "banned-file-stream",
       "opening output streams in library code is banned; route exports "
       "through src/observe (stats_export.h)"},
      {"fopen", true, "banned-file-stream",
       "opening output streams in library code is banned; route exports "
       "through src/observe (stats_export.h)"},
  };
  // The logging backend is the one library translation unit allowed to
  // write to stderr directly; command-line front ends under tools/
  // write to their own stdout by design.
  const bool stdio_exempt =
      ctx.PathContains("util/logging.") || ctx.PathContains("tools/");
  // The observe export layer is the one library component allowed to
  // open output files; tools/ CLIs own their output files too.
  const bool file_stream_exempt =
      ctx.PathContains("observe/") || ctx.PathContains("tools/");
  for (const Ban& ban : kBans) {
    if (stdio_exempt && std::strcmp(ban.rule, "banned-stdio") == 0) continue;
    if (file_stream_exempt &&
        std::strcmp(ban.rule, "banned-file-stream") == 0) {
      continue;
    }
    for (size_t i = 0; i < ctx.code.size(); ++i) {
      if (!IsIdent(ctx.code[i], ban.token)) continue;
      if (ban.needs_call &&
          (i + 1 >= ctx.code.size() || !IsPunct(ctx.code[i + 1], "("))) {
        continue;
      }
      if (!BanQualifierApplies(ctx.code, i)) continue;
      if (ctx.Suppressed(ctx.code[i].line)) continue;
      findings->push_back({ctx.path, ctx.code[i].line, ban.rule, ban.message});
    }
  }
}

// The hot-path translation units — the per-row merge loops and their
// kernels — must stay free of node-based associative containers:
// std::map / std::unordered_map allocate per element and chase pointers,
// exactly the behaviour the arena/SoA layout exists to avoid. Dense
// vectors with a touched-list reset are the sanctioned replacement (see
// the bitmap hit-counting phase in dmc_base.cc).
void CheckHotPathMap(const FileCtx& ctx, std::vector<Finding>* findings) {
  static const char* kHotPathSuffixes[] = {
      "core/dmc_base.cc", "core/dmc_sim_pass.cc", "core/kernels.cc"};
  bool is_hot_path = false;
  for (const char* suffix : kHotPathSuffixes) {
    if (ctx.PathEndsWith(suffix)) {
      is_hot_path = true;
      break;
    }
  }
  if (!is_hot_path) return;
  static const char* kTokens[] = {"map", "unordered_map", "multimap",
                                  "unordered_multimap"};
  for (size_t i = 0; i < ctx.code.size(); ++i) {
    bool hit = false;
    for (const char* token : kTokens) {
      if (IsIdent(ctx.code[i], token)) {
        hit = true;
        break;
      }
    }
    // Only the std:: containers are banned; a member `.map(...)` or a
    // project type named map is something else.
    if (!hit || !IsStdQualified(ctx.code, i)) continue;
    if (ctx.Suppressed(ctx.code[i].line)) continue;
    findings->push_back(
        {ctx.path, ctx.code[i].line, "banned-hot-path-map",
         "std::map/std::unordered_map are banned in hot-path mining "
         "code; use dense vectors with a touched-list reset (see the "
         "bitmap hit-counting in core/dmc_base.cc)"});
  }
}

// Bans nested row-id posting collections (std::vector<std::vector<RowId>>
// or the raw uint32_t spelling) outside src/postings/: per-column posting
// lists live in PostingContainer (postings/posting_container.h), which
// picks array/bitmap/run storage per 64Ki chunk. Before the container,
// the matrix, the counter arena and the incremental miner each grew
// their own copy of this shape; the ban keeps the duplication from
// coming back. Row-major data (vector<vector<ColumnId>>) is a different
// shape and stays legal, as do the whitelisted non-posting users:
// matrix/row_order.cc's radix buckets and the datagen builders.
void CheckRawPosting(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("postings/") || ctx.PathContains("matrix/row_order.") ||
      ctx.PathContains("datagen/")) {
    return;
  }
  const auto& code = ctx.code;
  for (size_t i = 0; i + 7 < code.size(); ++i) {
    if (!IsIdent(code[i], "vector") || !IsStdQualified(code, i)) continue;
    if (!IsPunct(code[i + 1], "<")) continue;
    if (!IsIdent(code[i + 2], "std") || !IsPunct(code[i + 3], "::") ||
        !IsIdent(code[i + 4], "vector") || !IsPunct(code[i + 5], "<")) {
      continue;
    }
    const bool row_id_element =
        IsIdent(code[i + 6], "RowId") || IsIdent(code[i + 6], "uint32_t");
    if (!row_id_element || !IsPunct(code[i + 7], ">")) continue;
    if (ctx.Suppressed(code[i].line)) continue;
    findings->push_back(
        {ctx.path, code[i].line, "banned-raw-posting",
         "nested row-id vectors re-create the per-column posting-list "
         "representation; use PostingContainer "
         "(postings/posting_container.h) so every layer shares one "
         "compressed substrate"});
  }
}

// Bans raw unlink/rename/remove calls (std::, :: or unqualified): file
// replacement must go through util/atomic_io.h so a crash can never
// leave a torn output. std::filesystem::remove stays legal — it is a
// deliberate delete, not a write-replace — and util/atomic_io.* itself
// is the one place allowed to use the primitives.
void CheckRawFileOps(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("util/atomic_io.")) return;
  struct Op {
    const char* token;
    /// `remove` is also the 3-arg <algorithm> erase-remove building
    /// block; only the 1-arg <cstdio> form is a file operation.
    bool one_arg_only;
  };
  static const Op kOps[] = {
      {"unlink", false}, {"rename", false}, {"remove", true}};
  const auto& code = ctx.code;
  for (const Op& op : kOps) {
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdent(code[i], op.token)) continue;
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
      // Work out the qualifier: std:: and global :: are the raw libc
      // forms; any other namespace (std::filesystem::remove) or a member
      // call (list.remove) is something else entirely.
      if (i >= 1 && IsPunct(code[i - 1], "::")) {
        const bool named_qualifier =
            i >= 2 && (IsIdent(code[i - 2]) ||
                       code[i - 2].kind == TokenKind::kNumber);
        if (named_qualifier && code[i - 2].text != "std") continue;
      } else if (i >= 1 && (IsPunct(code[i - 1], ".") ||
                            IsPunct(code[i - 1], "->"))) {
        continue;
      }
      if (op.one_arg_only) {
        const size_t close = MatchParen(code, i + 1);
        if (close == std::string::npos) continue;
        int depth = 0;
        bool multi_arg = false;
        for (size_t j = i + 1; j <= close && !multi_arg; ++j) {
          if (IsPunct(code[j], "(")) ++depth;
          else if (IsPunct(code[j], ")")) --depth;
          else if (IsPunct(code[j], ",") && depth == 1) multi_arg = true;
        }
        if (multi_arg) continue;
      }
      if (ctx.Suppressed(code[i].line)) continue;
      findings->push_back(
          {ctx.path, code[i].line, "banned-raw-unlink",
           "raw unlink/rename/remove is banned; replace files via "
           "util/atomic_io.h (AtomicFileWriter) or delete deliberately "
           "with std::filesystem::remove"});
    }
  }
}

// Bans mutable_rules()/mutable_pairs() calls outside src/rules/ and
// src/incr/: every other layer must treat a RuleSet as immutable once
// mined, or the incremental engine's snapshots and the serving index
// could silently drift from the counts they were built on.
void CheckRuleSetMutation(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("rules/") || ctx.PathContains("incr/")) return;
  static const char* kTokens[] = {"mutable_rules", "mutable_pairs"};
  const auto& code = ctx.code;
  for (const char* token : kTokens) {
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdent(code[i], token)) continue;
      // Only a member call (x.mutable_rules(...) / p->mutable_pairs(...))
      // is a mutation; the accessor declarations themselves and bare
      // identifiers are not.
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
      if (i == 0 ||
          (!IsPunct(code[i - 1], ".") && !IsPunct(code[i - 1], "->"))) {
        continue;
      }
      if (ctx.Suppressed(code[i].line)) continue;
      findings->push_back(
          {ctx.path, code[i].line, "banned-ruleset-mutation",
           "mutable_rules()/mutable_pairs() are banned outside src/rules/ "
           "and src/incr/; mined rule sets are immutable downstream — "
           "build a new set (or go through the incremental engine) "
           "instead of editing one in place"});
    }
  }
}

void CheckDiscardedStatus(const FileCtx& ctx,
                          const std::set<std::string>& status_functions,
                          std::vector<Finding>* findings) {
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsIdent(code[i]) || status_functions.count(code[i].text) == 0) {
      continue;
    }
    // Must be a call: the next token is '('.
    if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
    // Walk left over the receiver chain (obj.  obj->  ns::). Each hop
    // must be whitespace-free — `state.Frob()` walks to `state`, while
    // `return Frob()` stops at `Frob` and sees `return` as context.
    size_t start = i;
    while (start >= 1) {
      const Token& p = code[start - 1];
      const bool connector =
          IsPunct(p, ".") || IsPunct(p, "->") || IsPunct(p, "::");
      if (!connector || !Adjacent(p, code[start])) break;
      if (start >= 2 && IsIdent(code[start - 2]) &&
          Adjacent(code[start - 2], p)) {
        start -= 2;
        continue;
      }
      start -= 1;  // chain opens with the connector itself (e.g. `).Foo`)
      break;
    }
    // The previous token decides statement context.
    bool statement_start;
    if (start == 0) {
      statement_start = true;
    } else {
      const Token& prev = code[start - 1];
      if (IsPunct(prev, ";") || IsPunct(prev, "{") || IsPunct(prev, "}")) {
        statement_start = true;
      } else if (IsPunct(prev, ")")) {
        // `if (cond) Foo();` discards; `(void)Foo();` does not.
        const bool void_cast =
            start >= 3 && IsPunct(code[start - 3], "(") &&
            IsIdent(code[start - 2], "void") &&
            Adjacent(code[start - 3], code[start - 2]) &&
            Adjacent(code[start - 2], code[start - 1]);
        statement_start = !void_cast;
      } else {
        statement_start = false;
      }
    }
    if (!statement_start) continue;
    // The whole statement must be the call: `Foo(...);`.
    const size_t close = MatchParen(code, i + 1);
    if (close == std::string::npos) continue;
    if (close + 1 >= code.size() || !IsPunct(code[close + 1], ";")) continue;
    if (ctx.Suppressed(code[i].line)) continue;
    findings->push_back(
        {ctx.path, code[i].line, "discarded-status",
         "result of Status-returning call '" + code[i].text +
             "' is discarded; check it or cast to (void) with a reason"});
  }
}

// Confines the raw BSD socket primitives to src/serve/net_*: every
// other layer speaks fds through the Status-returning wrappers in
// serve/net_socket.h, the same way atomic_io.cc owns unlink/rename, so
// errno mapping, EINTR retries and non-blocking semantics cannot fork.
// Only socket/accept/recv/send are listed — bind/listen/connect would
// false-positive on std::bind and friends, and a socket obtained
// without socket()/accept() has nothing to recv on anyway.
void CheckRawSocket(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("serve/net_")) return;
  static const char* kCalls[] = {"socket", "accept", "recv", "send"};
  const auto& code = ctx.code;
  for (const char* call : kCalls) {
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdent(code[i], call)) continue;
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
      // The libc primitives are unqualified or global-:: qualified. A
      // member call (conn.send) or any named namespace (net::, asio::)
      // is a wrapper, which is exactly what the rule wants callers on.
      if (i >= 1 && IsPunct(code[i - 1], "::")) {
        const bool named_qualifier =
            i >= 2 && (IsIdent(code[i - 2]) ||
                       code[i - 2].kind == TokenKind::kNumber);
        if (named_qualifier) continue;
      } else if (i >= 1 && (IsPunct(code[i - 1], ".") ||
                            IsPunct(code[i - 1], "->"))) {
        continue;
      }
      if (ctx.Suppressed(code[i].line)) continue;
      findings->push_back(
          {ctx.path, code[i].line, "banned-raw-socket",
           "raw " + code[i].text +
               "() is banned outside src/serve/net_*; speak to sockets "
               "through the Status-returning wrappers in "
               "serve/net_socket.h"});
    }
  }
}

// Confines the raw process-control primitives to src/shard/process_*:
// the coordinator's fork/exec plumbing owns pid lifetimes, signal
// delivery and EINTR-safe reaping, the same way serve/net_* owns
// sockets and atomic_io.cc owns unlink/rename. Everything else spawns
// and signals workers through the Status-returning wrappers in
// shard/process_control.h, so a stray kill(2) or unreaped child cannot
// appear outside the one audited TU.
void CheckRawProcess(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("shard/process_")) return;
  static const char* kCalls[] = {"fork",   "vfork", "execv",   "execve",
                                 "execvp", "execl", "execlp",  "waitpid",
                                 "wait4",  "kill"};
  const auto& code = ctx.code;
  for (const char* call : kCalls) {
    for (size_t i = 0; i < code.size(); ++i) {
      if (!IsIdent(code[i], call)) continue;
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
      // Same qualifier logic as banned-raw-socket: the libc primitives
      // are unqualified or global-:: qualified; member calls and named
      // namespaces are wrappers.
      if (i >= 1 && IsPunct(code[i - 1], "::")) {
        const bool named_qualifier =
            i >= 2 && (IsIdent(code[i - 2]) ||
                       code[i - 2].kind == TokenKind::kNumber);
        if (named_qualifier) continue;
      } else if (i >= 1 && (IsPunct(code[i - 1], ".") ||
                            IsPunct(code[i - 1], "->"))) {
        continue;
      }
      if (ctx.Suppressed(code[i].line)) continue;
      findings->push_back(
          {ctx.path, code[i].line, "banned-raw-process",
           "raw " + code[i].text +
               "() is banned outside src/shard/process_*; spawn, signal "
               "and reap workers through the wrappers in "
               "shard/process_control.h"});
    }
  }
}

// Bans bare .lock()/.unlock() member calls outside src/util/: a raw
// critical section is invisible to clang's -Wthread-safety analysis.
// dmc::MutexLock (util/thread_annotations.h) is the sanctioned guard;
// the wrapper's own implementation under src/util/ is the one place
// the primitives may appear.
void CheckRawLock(const FileCtx& ctx, std::vector<Finding>* findings) {
  if (ctx.PathContains("util/")) return;
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!IsIdent(code[i], "lock") && !IsIdent(code[i], "unlock")) continue;
    if (i == 0 ||
        (!IsPunct(code[i - 1], ".") && !IsPunct(code[i - 1], "->"))) {
      continue;
    }
    if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
    if (ctx.Suppressed(code[i].line)) continue;
    findings->push_back(
        {ctx.path, code[i].line, "banned-raw-lock",
         "bare ." + code[i].text +
             "() is banned outside src/util/; hold critical sections via "
             "dmc::MutexLock (util/thread_annotations.h) so thread-safety "
             "analysis can see them"});
  }
}

// Flags declarations of std:: mutex types: libstdc++ mutexes carry no
// capability attributes, so clang's analysis cannot track them. Either
// declare dmc::Mutex (an annotated capability), or — for the rare case
// where a raw std::mutex is unavoidable — tie it into the annotation
// graph by referencing its name from DMC_GUARDED_BY/DMC_REQUIRES.
void CheckUnannotatedMutex(const FileCtx& ctx,
                           std::vector<Finding>* findings) {
  // The annotated wrapper itself is the one sanctioned home for a raw
  // std::mutex.
  if (ctx.PathContains("util/thread_annotations.h")) return;
  static const char* kMutexTypes[] = {
      "mutex",       "shared_mutex",           "recursive_mutex",
      "timed_mutex", "recursive_timed_mutex", "shared_timed_mutex"};
  static const char* kAnnotations[] = {
      "DMC_GUARDED_BY", "DMC_PT_GUARDED_BY", "DMC_REQUIRES",
      "DMC_REQUIRES_SHARED", "DMC_ACQUIRE", "DMC_ACQUIRE_SHARED",
      "DMC_RELEASE", "DMC_RELEASE_SHARED", "DMC_EXCLUDES",
      "DMC_ASSERT_CAPABILITY"};
  const auto& code = ctx.code;

  // Names referenced from any annotation argument list.
  std::set<std::string> referenced;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    bool is_annotation = false;
    for (const char* a : kAnnotations) {
      if (IsIdent(code[i], a)) {
        is_annotation = true;
        break;
      }
    }
    if (!is_annotation || !IsPunct(code[i + 1], "(")) continue;
    const size_t close = MatchParen(code, i + 1);
    if (close == std::string::npos) continue;
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(code[j])) referenced.insert(code[j].text);
    }
  }

  for (size_t i = 0; i + 4 < code.size(); ++i) {
    if (!IsIdent(code[i], "std") || !IsPunct(code[i + 1], "::")) continue;
    bool is_mutex_type = false;
    for (const char* t : kMutexTypes) {
      if (IsIdent(code[i + 2], t)) {
        is_mutex_type = true;
        break;
      }
    }
    if (!is_mutex_type) continue;
    // A declaration, not a mention: `std::mutex name;`.
    if (!IsIdent(code[i + 3]) || !IsPunct(code[i + 4], ";")) continue;
    const std::string& name = code[i + 3].text;
    if (referenced.count(name) != 0) continue;
    if (ctx.Suppressed(code[i].line)) continue;
    findings->push_back(
        {ctx.path, code[i].line, "unannotated-mutex",
         "std::" + code[i + 2].text + " '" + name +
             "' is invisible to thread-safety analysis; declare it as "
             "dmc::Mutex (util/thread_annotations.h) or reference it "
             "from DMC_GUARDED_BY/DMC_REQUIRES"});
  }
}

// In the audited hot-path TUs, every named atomic operation must spell
// its std::memory_order. A defaulted seq_cst on a hot path is treated
// as "ordering not thought about", not "strongest therefore safe" —
// the sweep that relaxed these counters is easy to silently regress.
void CheckAtomicOrdering(const FileCtx& ctx, std::vector<Finding>* findings) {
  static const char* kAuditedSuffixes[] = {
      "core/dmc_base.cc",     "core/dmc_sim_pass.cc", "core/kernels.cc",
      "core/parallel_dmc.cc", "util/failpoint.cc",    "util/logging.cc",
      "util/atomic_io.cc"};
  bool audited = false;
  for (const char* suffix : kAuditedSuffixes) {
    if (ctx.PathEndsWith(suffix)) {
      audited = true;
      break;
    }
  }
  if (!audited) return;
  static const char* kAtomicOps[] = {
      "load",        "store",       "exchange",
      "fetch_add",   "fetch_sub",   "fetch_and",
      "fetch_or",    "fetch_xor",   "compare_exchange_weak",
      "compare_exchange_strong",    "test_and_set"};
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    bool is_op = false;
    for (const char* op : kAtomicOps) {
      if (IsIdent(code[i], op)) {
        is_op = true;
        break;
      }
    }
    if (!is_op) continue;
    if (i == 0 ||
        (!IsPunct(code[i - 1], ".") && !IsPunct(code[i - 1], "->"))) {
      continue;
    }
    if (i + 1 >= code.size() || !IsPunct(code[i + 1], "(")) continue;
    const size_t close = MatchParen(code, i + 1);
    if (close == std::string::npos) continue;
    bool has_order = false;
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(code[j]) &&
          code[j].text.rfind("memory_order", 0) == 0) {
        has_order = true;
        break;
      }
    }
    if (has_order) continue;
    if (ctx.Suppressed(code[i].line)) continue;
    findings->push_back(
        {ctx.path, code[i].line, "atomic-ordering-audit",
         "atomic ." + code[i].text +
             "() without an explicit std::memory_order in an audited "
             "hot-path TU; spell the ordering (memory_order_relaxed if "
             "that is what you mean)"});
  }
}

}  // namespace

std::string ScrubSource(const std::string& content) {
  return ScrubWithLexer(content);
}

std::set<std::string> CollectStatusFunctions(const std::string& content) {
  std::vector<Token> code;
  for (Token& t : LexSource(content)) {
    if (t.kind != TokenKind::kComment) code.push_back(std::move(t));
  }
  std::set<std::string> names;
  for (size_t i = 0; i < code.size(); ++i) {
    size_t j;
    if (IsIdent(code[i], "StatusOr")) {
      // Skip the (possibly nested) template argument. `<`/`>` are
      // single-char tokens, so `>>` closes two levels, as it should.
      if (i + 1 >= code.size() || !IsPunct(code[i + 1], "<")) continue;
      int depth = 0;
      j = i + 1;
      while (j < code.size()) {
        if (IsPunct(code[j], "<")) ++depth;
        if (IsPunct(code[j], ">") && --depth == 0) {
          ++j;
          break;
        }
        ++j;
      }
    } else if (IsIdent(code[i], "Status")) {
      j = i + 1;
    } else {
      continue;
    }
    if (j >= code.size() || !IsIdent(code[j])) continue;
    const std::string& name = code[j].text;
    if (j + 1 < code.size() && IsPunct(code[j + 1], "(") &&
        name != "operator") {
      names.insert(name);
    }
  }
  return names;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::set<std::string>& status_functions) {
  std::vector<Finding> findings;
  if (content.find("dmc_lint: ignore-file") != std::string::npos) {
    return findings;
  }
  const auto raw_lines = SplitLines(content);
  std::vector<bool> suppressed(raw_lines.size());
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    suppressed[i] = raw_lines[i].find("dmc_lint: ignore") != std::string::npos;
  }
  FileCtx ctx{path, {}, std::move(suppressed)};
  for (Token& t : LexSource(content)) {
    if (t.kind != TokenKind::kComment) ctx.code.push_back(std::move(t));
  }
  CheckIncludeGuard(ctx, &findings);
  CheckBannedTokens(ctx, &findings);
  CheckHotPathMap(ctx, &findings);
  CheckRawPosting(ctx, &findings);
  CheckRawFileOps(ctx, &findings);
  CheckRuleSetMutation(ctx, &findings);
  CheckDiscardedStatus(ctx, status_functions, &findings);
  CheckRawSocket(ctx, &findings);
  CheckRawProcess(ctx, &findings);
  CheckRawLock(ctx, &findings);
  CheckUnannotatedMutex(ctx, &findings);
  CheckAtomicOrdering(ctx, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string p = entry.path().string();
      if (IsSourcePath(p)) files.push_back(p);
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());

  std::vector<std::pair<std::string, std::string>> contents;
  std::set<std::string> registry;
  for (const std::string& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    contents.emplace_back(p, buf.str());
    for (const std::string& name :
         CollectStatusFunctions(contents.back().second)) {
      registry.insert(name);
    }
  }

  std::vector<Finding> findings;
  for (const auto& [p, content] : contents) {
    auto file_findings = LintFile(p, content, registry);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

}  // namespace lint
}  // namespace dmc
