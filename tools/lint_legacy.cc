#include "tools/lint_legacy.h"

// NOTE: frozen v1 engine — see lint_legacy.h. Edit lint_lib.cc instead.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

namespace dmc {
namespace lint {
namespace legacy {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool HasExtension(const std::string& path, const char* ext) {
  const size_t n = std::strlen(ext);
  return path.size() >= n && path.compare(path.size() - n, n, ext) == 0;
}

bool IsSourcePath(const std::string& path) {
  return HasExtension(path, ".h") || HasExtension(path, ".cc") ||
         HasExtension(path, ".cpp");
}

// Splits into lines (without trailing '\n'); line i is 1-based line i+1.
std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

// 1-based line number of offset `pos` in `content`.
int LineOf(const std::string& content, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(content.begin(), content.begin() + pos, '\n'));
}

// True when the identifier at [pos, pos+len) is qualified as std::.
// Walks left over an optional `::` and reads the qualifier word.
bool QualifierAllowsBan(const std::string& s, size_t pos) {
  size_t j = pos;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
  if (j < 2 || s[j - 1] != ':' || s[j - 2] != ':') return true;  // unqualified
  j -= 2;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
  size_t end = j;
  while (j > 0 && IsIdentChar(s[j - 1])) --j;
  return s.substr(j, end - j) == "std";  // std::rand banned, Foo::rand not
}

// Index of the matching ')' for the '(' at `open`, or npos.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string ScrubSource(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::set<std::string> CollectStatusFunctions(const std::string& content) {
  const std::string s = ScrubSource(content);
  std::set<std::string> names;
  for (size_t i = 0; i + 6 <= s.size(); ++i) {
    if (s.compare(i, 6, "Status") != 0) continue;
    if (i > 0 && IsIdentChar(s[i - 1])) continue;
    size_t j = i + 6;
    if (j + 2 <= s.size() && s.compare(j, 2, "Or") == 0) {
      j += 2;
      j = SkipSpace(s, j);
      if (j >= s.size() || s[j] != '<') continue;
      int depth = 0;  // skip the (possibly nested) template argument
      while (j < s.size()) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>' && --depth == 0) {
          ++j;
          break;
        }
        ++j;
      }
    } else if (j < s.size() && IsIdentChar(s[j])) {
      continue;  // StatusCode, StatusXyz, ...
    }
    j = SkipSpace(s, j);
    const size_t name_begin = j;
    while (j < s.size() && IsIdentChar(s[j])) ++j;
    if (j == name_begin) continue;
    const std::string name = s.substr(name_begin, j - name_begin);
    j = SkipSpace(s, j);
    if (j < s.size() && s[j] == '(' && name != "operator") {
      names.insert(name);
    }
    i = j;
  }
  return names;
}

namespace {

void CheckIncludeGuard(const std::string& path, const std::string& scrubbed,
                       const std::vector<bool>& suppressed,
                       std::vector<Finding>* findings) {
  if (!HasExtension(path, ".h")) return;
  const auto lines = SplitLines(scrubbed);
  // First two non-blank (post-scrub) lines must be `#pragma once` or a
  // matching #ifndef/#define pair.
  std::vector<std::pair<int, std::string>> significant;
  for (size_t i = 0; i < lines.size() && significant.size() < 2; ++i) {
    const std::string t = Trim(lines[i]);
    if (!t.empty()) significant.emplace_back(static_cast<int>(i + 1), t);
  }
  if (!suppressed.empty() && suppressed[0]) return;
  if (!significant.empty() &&
      significant[0].second.rfind("#pragma once", 0) == 0) {
    return;
  }
  if (significant.size() == 2) {
    const std::string& a = significant[0].second;
    const std::string& b = significant[1].second;
    if (a.rfind("#ifndef ", 0) == 0 && b.rfind("#define ", 0) == 0 &&
        Trim(a.substr(8)) == Trim(b.substr(8)) && !Trim(a.substr(8)).empty()) {
      return;
    }
  }
  findings->push_back(
      {path, 1, "include-guard",
       "header must start with #pragma once or a matching "
       "#ifndef/#define include guard"});
}

void CheckBannedTokens(const std::string& path, const std::string& scrubbed,
                       const std::vector<bool>& suppressed,
                       std::vector<Finding>* findings) {
  struct Ban {
    const char* token;
    bool needs_call;  // must be followed by '('
    const char* rule;
    const char* message;
  };
  static const Ban kBans[] = {
      {"rand", true, "banned-rand",
       "rand() is banned; use dmc::Rng (util/random.h) for reproducibility"},
      {"srand", true, "banned-rand",
       "srand() is banned; seed dmc::Rng explicitly instead"},
      {"printf", true, "banned-stdio",
       "printf in library code is banned; use DMC_LOG (util/logging.h)"},
      {"fprintf", true, "banned-stdio",
       "fprintf in library code is banned; use DMC_LOG (util/logging.h)"},
      {"puts", true, "banned-stdio",
       "puts in library code is banned; use DMC_LOG (util/logging.h)"},
      {"cout", false, "banned-stdio",
       "std::cout in library code is banned; use DMC_LOG (util/logging.h)"},
      {"cerr", false, "banned-stdio",
       "std::cerr in library code is banned; use DMC_LOG (util/logging.h)"},
      {"ofstream", false, "banned-file-stream",
       "opening output streams in library code is banned; route exports "
       "through src/observe (stats_export.h)"},
      {"fopen", true, "banned-file-stream",
       "opening output streams in library code is banned; route exports "
       "through src/observe (stats_export.h)"},
  };
  // The logging backend is the one translation unit allowed to write to
  // stderr directly.
  const bool is_logging_backend =
      path.find("util/logging.") != std::string::npos;
  // The observe export layer is the one library component allowed to open
  // output files; everything else must hand data to it.
  const bool is_observe_export =
      path.find("observe/") != std::string::npos;
  for (const Ban& ban : kBans) {
    if (is_logging_backend &&
        std::string(ban.rule) == "banned-stdio") {
      continue;
    }
    if (is_observe_export &&
        std::string(ban.rule) == "banned-file-stream") {
      continue;
    }
    const size_t len = std::strlen(ban.token);
    size_t pos = 0;
    while ((pos = scrubbed.find(ban.token, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += len;
      if (here > 0 && IsIdentChar(scrubbed[here - 1])) continue;
      if (here + len < scrubbed.size() && IsIdentChar(scrubbed[here + len])) {
        continue;
      }
      if (ban.needs_call) {
        const size_t after = SkipSpace(scrubbed, here + len);
        if (after >= scrubbed.size() || scrubbed[after] != '(') continue;
      }
      if (!QualifierAllowsBan(scrubbed, here)) continue;
      const int line = LineOf(scrubbed, here);
      if (static_cast<size_t>(line - 1) < suppressed.size() &&
          suppressed[line - 1]) {
        continue;
      }
      findings->push_back({path, line, ban.rule, ban.message});
    }
  }
}

// True when the identifier at `pos` is written with an explicit std::
// qualifier (possibly spaced: `std :: map`).
bool IsStdQualified(const std::string& s, size_t pos) {
  size_t j = pos;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
  if (j < 2 || s[j - 1] != ':' || s[j - 2] != ':') return false;
  j -= 2;
  while (j > 0 && std::isspace(static_cast<unsigned char>(s[j - 1]))) --j;
  size_t end = j;
  while (j > 0 && IsIdentChar(s[j - 1])) --j;
  return s.substr(j, end - j) == "std";
}

// The hot-path translation units — the per-row merge loops and their
// kernels — must stay free of node-based associative containers:
// std::map / std::unordered_map allocate per element and chase pointers,
// exactly the behaviour the arena/SoA layout exists to avoid. Dense
// vectors with a touched-list reset are the sanctioned replacement (see
// the bitmap hit-counting phase in dmc_base.cc).
void CheckHotPathMap(const std::string& path, const std::string& scrubbed,
                     const std::vector<bool>& suppressed,
                     std::vector<Finding>* findings) {
  static const char* kHotPathSuffixes[] = {
      "core/dmc_base.cc", "core/dmc_sim_pass.cc", "core/kernels.cc"};
  bool is_hot_path = false;
  for (const char* suffix : kHotPathSuffixes) {
    const size_t n = std::strlen(suffix);
    if (path.size() >= n && path.compare(path.size() - n, n, suffix) == 0) {
      is_hot_path = true;
      break;
    }
  }
  if (!is_hot_path) return;
  static const char* kTokens[] = {"map", "unordered_map", "multimap",
                                  "unordered_multimap"};
  for (const char* token : kTokens) {
    const size_t len = std::strlen(token);
    size_t pos = 0;
    while ((pos = scrubbed.find(token, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += len;
      if (here > 0 && IsIdentChar(scrubbed[here - 1])) continue;
      if (here + len < scrubbed.size() && IsIdentChar(scrubbed[here + len])) {
        continue;
      }
      // Only the std:: containers are banned; a member `.map(...)` or a
      // project type named map is something else.
      if (!IsStdQualified(scrubbed, here)) continue;
      const int line = LineOf(scrubbed, here);
      if (static_cast<size_t>(line - 1) < suppressed.size() &&
          suppressed[line - 1]) {
        continue;
      }
      findings->push_back(
          {path, line, "banned-hot-path-map",
           "std::map/std::unordered_map are banned in hot-path mining "
           "code; use dense vectors with a touched-list reset (see the "
           "bitmap hit-counting in core/dmc_base.cc)"});
    }
  }
}

// Bans raw unlink/rename/remove calls (std::, :: or unqualified): file
// replacement must go through util/atomic_io.h so a crash can never
// leave a torn output. std::filesystem::remove stays legal — it is a
// deliberate delete, not a write-replace — and util/atomic_io.* itself
// is the one place allowed to use the primitives.
void CheckRawFileOps(const std::string& path, const std::string& scrubbed,
                     const std::vector<bool>& suppressed,
                     std::vector<Finding>* findings) {
  if (path.find("util/atomic_io.") != std::string::npos) return;
  struct Op {
    const char* token;
    /// `remove` is also the 3-arg <algorithm> erase-remove building
    /// block; only the 1-arg <cstdio> form is a file operation.
    bool one_arg_only;
  };
  static const Op kOps[] = {
      {"unlink", false}, {"rename", false}, {"remove", true}};
  for (const Op& op : kOps) {
    const size_t len = std::strlen(op.token);
    size_t pos = 0;
    while ((pos = scrubbed.find(op.token, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += len;
      if (here > 0 && IsIdentChar(scrubbed[here - 1])) continue;
      if (here + len < scrubbed.size() &&
          IsIdentChar(scrubbed[here + len])) {
        continue;
      }
      const size_t open = SkipSpace(scrubbed, here + len);
      if (open >= scrubbed.size() || scrubbed[open] != '(') continue;
      // Work out the qualifier: std:: and global :: are the raw libc
      // forms; any other namespace (std::filesystem::remove) or a member
      // call (list.remove) is something else entirely.
      size_t q = here;
      while (q > 0 &&
             std::isspace(static_cast<unsigned char>(scrubbed[q - 1]))) {
        --q;
      }
      if (q >= 2 && scrubbed[q - 1] == ':' && scrubbed[q - 2] == ':') {
        size_t e = q - 2;
        while (e > 0 &&
               std::isspace(static_cast<unsigned char>(scrubbed[e - 1]))) {
          --e;
        }
        size_t b = e;
        while (b > 0 && IsIdentChar(scrubbed[b - 1])) --b;
        const std::string qual = scrubbed.substr(b, e - b);
        if (!qual.empty() && qual != "std") continue;
      } else if (q > 0 &&
                 (scrubbed[q - 1] == '.' ||
                  (q >= 2 && scrubbed[q - 1] == '>' &&
                   scrubbed[q - 2] == '-'))) {
        continue;
      }
      if (op.one_arg_only) {
        const size_t close = MatchParen(scrubbed, open);
        if (close == std::string::npos) continue;
        int depth = 0;
        bool multi_arg = false;
        for (size_t i = open; i <= close && !multi_arg; ++i) {
          if (scrubbed[i] == '(') ++depth;
          else if (scrubbed[i] == ')') --depth;
          else if (scrubbed[i] == ',' && depth == 1) multi_arg = true;
        }
        if (multi_arg) continue;
      }
      const int line = LineOf(scrubbed, here);
      if (static_cast<size_t>(line - 1) < suppressed.size() &&
          suppressed[line - 1]) {
        continue;
      }
      findings->push_back(
          {path, line, "banned-raw-unlink",
           "raw unlink/rename/remove is banned; replace files via "
           "util/atomic_io.h (AtomicFileWriter) or delete deliberately "
           "with std::filesystem::remove"});
    }
  }
}

// Bans mutable_rules()/mutable_pairs() calls outside src/rules/ and
// src/incr/: every other layer must treat a RuleSet as immutable once
// mined, or the incremental engine's snapshots and the serving index
// could silently drift from the counts they were built on.
void CheckRuleSetMutation(const std::string& path,
                          const std::string& scrubbed,
                          const std::vector<bool>& suppressed,
                          std::vector<Finding>* findings) {
  if (path.find("rules/") != std::string::npos ||
      path.find("incr/") != std::string::npos) {
    return;
  }
  static const char* kTokens[] = {"mutable_rules", "mutable_pairs"};
  for (const char* token : kTokens) {
    const size_t len = std::strlen(token);
    size_t pos = 0;
    while ((pos = scrubbed.find(token, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += len;
      if (here > 0 && IsIdentChar(scrubbed[here - 1])) continue;
      if (here + len < scrubbed.size() && IsIdentChar(scrubbed[here + len])) {
        continue;
      }
      // Only a member call (x.mutable_rules(...) / p->mutable_pairs(...))
      // is a mutation; the accessor declarations themselves and bare
      // identifiers are not.
      const size_t open = SkipSpace(scrubbed, here + len);
      if (open >= scrubbed.size() || scrubbed[open] != '(') continue;
      if (here == 0) continue;
      const char prev = scrubbed[here - 1];
      const bool member_call =
          prev == '.' ||
          (here >= 2 && prev == '>' && scrubbed[here - 2] == '-');
      if (!member_call) continue;
      const int line = LineOf(scrubbed, here);
      if (static_cast<size_t>(line - 1) < suppressed.size() &&
          suppressed[line - 1]) {
        continue;
      }
      findings->push_back(
          {path, line, "banned-ruleset-mutation",
           "mutable_rules()/mutable_pairs() are banned outside src/rules/ "
           "and src/incr/; mined rule sets are immutable downstream — "
           "build a new set (or go through the incremental engine) "
           "instead of editing one in place"});
    }
  }
}

void CheckDiscardedStatus(const std::string& path,
                          const std::string& scrubbed,
                          const std::vector<bool>& suppressed,
                          const std::set<std::string>& status_functions,
                          std::vector<Finding>* findings) {
  for (const std::string& name : status_functions) {
    size_t pos = 0;
    while ((pos = scrubbed.find(name, pos)) != std::string::npos) {
      const size_t here = pos;
      pos += name.size();
      if (here > 0 && IsIdentChar(scrubbed[here - 1])) continue;
      const size_t after_name = here + name.size();
      if (after_name < scrubbed.size() && IsIdentChar(scrubbed[after_name])) {
        continue;
      }
      // Must be a call: next significant char is '('.
      const size_t open = SkipSpace(scrubbed, after_name);
      if (open >= scrubbed.size() || scrubbed[open] != '(') continue;
      // Walk left over the receiver chain (obj.  obj->  ns::) to the
      // start of the expression.
      size_t j = here;
      while (j > 0) {
        const char c = scrubbed[j - 1];
        if (IsIdentChar(c) || c == '.' || c == ':') {
          --j;
        } else if (c == '>' && j >= 2 && scrubbed[j - 2] == '-') {
          j -= 2;
        } else {
          break;
        }
      }
      // The previous significant character decides statement context.
      size_t k = j;
      while (k > 0 &&
             std::isspace(static_cast<unsigned char>(scrubbed[k - 1]))) {
        --k;
      }
      const char prev = k == 0 ? ';' : scrubbed[k - 1];
      bool statement_start = prev == ';' || prev == '{' || prev == '}';
      if (prev == ')') {
        // `if (cond) Foo();` discards; `(void)Foo();` does not.
        std::string before = scrubbed.substr(0, k);
        const size_t v = before.rfind("(void)");
        statement_start = !(v != std::string::npos && v + 6 == k);
      }
      if (!statement_start) continue;
      // The whole statement must be the call: `Foo(...);`.
      const size_t close = MatchParen(scrubbed, open);
      if (close == std::string::npos) continue;
      const size_t semi = SkipSpace(scrubbed, close + 1);
      if (semi >= scrubbed.size() || scrubbed[semi] != ';') continue;
      const int line = LineOf(scrubbed, here);
      if (static_cast<size_t>(line - 1) < suppressed.size() &&
          suppressed[line - 1]) {
        continue;
      }
      findings->push_back(
          {path, line, "discarded-status",
           "result of Status-returning call '" + name +
               "' is discarded; check it or cast to (void) with a reason"});
    }
  }
}

}  // namespace

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::set<std::string>& status_functions) {
  std::vector<Finding> findings;
  if (content.find("dmc_lint: ignore-file") != std::string::npos) {
    return findings;
  }
  const auto raw_lines = SplitLines(content);
  std::vector<bool> suppressed(raw_lines.size());
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    suppressed[i] = raw_lines[i].find("dmc_lint: ignore") != std::string::npos;
  }
  const std::string scrubbed = ScrubSource(content);
  CheckIncludeGuard(path, scrubbed, suppressed, &findings);
  CheckBannedTokens(path, scrubbed, suppressed, &findings);
  CheckHotPathMap(path, scrubbed, suppressed, &findings);
  CheckRawFileOps(path, scrubbed, suppressed, &findings);
  CheckRuleSetMutation(path, scrubbed, suppressed, &findings);
  CheckDiscardedStatus(path, scrubbed, suppressed, status_functions,
                       &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (const auto& entry :
         fs::recursive_directory_iterator(root, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string p = entry.path().string();
      if (IsSourcePath(p)) files.push_back(p);
    }
  } else {
    files.push_back(root);
  }
  std::sort(files.begin(), files.end());

  std::vector<std::pair<std::string, std::string>> contents;
  std::set<std::string> registry;
  for (const std::string& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    contents.emplace_back(p, buf.str());
    for (const std::string& name : CollectStatusFunctions(contents.back().second)) {
      registry.insert(name);
    }
  }

  std::vector<Finding> findings;
  for (const auto& [p, content] : contents) {
    auto file_findings = LintFile(p, content, registry);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace legacy
}  // namespace lint
}  // namespace dmc
