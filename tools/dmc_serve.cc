// dmc_serve — the networked rule-serving daemon and its client CLI.
//
//   dmc_serve serve  --input=FILE [--port=0] [--bind=127.0.0.1]
//                    [--minconf=0.9] [--drain-timeout=5]
//                    [--window-rows=N] [--failpoints=SPEC]
//                    [--metrics-out=FILE]
//       Batch-mines FILE, publishes it as generation 1 and serves the
//       wire protocol (src/serve/protocol.h) until SIGTERM/SIGINT,
//       which triggers a graceful drain. --window-rows bounds the
//       mined window: appends past N rows auto-evict the oldest.
//       --port=0 picks an ephemeral port; the bound address is
//       announced on stdout as
//           listening on HOST:PORT
//       so scripts (tools/check.sh) can parse it.
//
//   dmc_serve query  --port=N [--host=127.0.0.1]
//                    (--lhs=COL | --rhs=COL | --top=K)
//       Prints the matching rules of the server's current snapshot,
//       one "LHS => RHS conf=C hits=H/N" line each.
//
//   dmc_serve append --port=N [--host=127.0.0.1] --input=FILE
//       Sends FILE's rows as one append batch; prints the server's
//       ingest-queue depth at acknowledgment time.
//
//   dmc_serve evict  --port=N [--host=127.0.0.1] --rows=N
//       Evicts the server's oldest N rows from the mined window;
//       prints the ingest-queue depth at acknowledgment time.
//
//   dmc_serve stats  --port=N [--host=127.0.0.1]
//       Prints the server's counters, one "name value" line each.

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "matrix/matrix_io.h"
#include "observe/metrics.h"
#include "observe/stats_export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/failpoint.h"

namespace dmc {
namespace {

// Minimal flag parsing: --name=value and boolean --name (same contract
// as dmc_cli's).
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const size_t eq = arg.find('=');
      std::string key = arg.substr(2, eq == std::string::npos
                                          ? std::string::npos
                                          : eq - 2);
      std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
      values_[std::move(key)] = std::move(value);
    }
  }

  std::string Get(const std::string& name, const std::string& def = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  uint64_t GetInt(const std::string& name, uint64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end()
               ? def
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: dmc_serve <serve|query|append|evict|stats> "
               "[--flag=value ...]\n(see the header of tools/dmc_serve.cc "
               "for the full flag list)\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "dmc_serve: %s\n", status.ToString().c_str());
  return 1;
}

// The signal handler may only touch this pointer; RequestShutdown is
// async-signal-safe by contract (one atomic store + one pipe write).
std::atomic<RuleServer*> g_server{nullptr};

void HandleTermSignal(int) {
  RuleServer* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

int RunServe(const Flags& flags) {
  const std::string input = flags.Get("input");
  if (input.empty()) {
    std::fprintf(stderr, "dmc_serve serve: --input=FILE is required\n");
    return 2;
  }
  const std::string failpoints = flags.Get("failpoints");
  if (!failpoints.empty()) {
    const Status st = fail::Configure(failpoints);
    if (!st.ok()) return Fail(st);
  }

  auto matrix = ReadMatrixTextFile(input);
  if (!matrix.ok()) return Fail(matrix.status());

  MetricsRegistry metrics;
  ServeOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.bind_address = flags.Get("bind", "127.0.0.1");
  options.drain_timeout_seconds = flags.GetDouble("drain-timeout", 5.0);
  options.mining.min_confidence = flags.GetDouble("minconf", 0.9);
  options.window_rows = flags.GetInt("window-rows", 0);
  options.metrics = &metrics;

  RuleServer server(std::move(options));
  Status st = server.SeedFromMatrix(*matrix);
  if (!st.ok()) return Fail(st);
  st = server.Start();
  if (!st.ok()) return Fail(st);

  g_server.store(&server, std::memory_order_release);
  struct sigaction action = {};
  action.sa_handler = HandleTermSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  const serve::ServeStats seeded = server.StatsSnapshot();
  std::printf("seeded generation %llu with %llu rules\n",
              (unsigned long long)seeded.generation,
              (unsigned long long)seeded.num_rules);
  std::printf("listening on %s:%u\n", flags.Get("bind", "127.0.0.1").c_str(),
              server.port());
  std::fflush(stdout);

  server.Wait();
  g_server.store(nullptr, std::memory_order_release);

  const serve::ServeStats final_stats = server.StatsSnapshot();
  std::printf("drained: %llu requests, %llu batches, generation %llu\n",
              (unsigned long long)final_stats.requests_served,
              (unsigned long long)final_stats.batches_ingested,
              (unsigned long long)final_stats.generation);

  const std::string metrics_out = flags.Get("metrics-out");
  if (!metrics_out.empty()) {
    MetricsReport report;
    report.tool = "dmc_serve";
    report.dataset = input;
    report.metrics = &metrics;
    const Status write_st = ExportMetricsJsonFile(report, metrics_out);
    if (!write_st.ok()) return Fail(write_st);
  }
  return 0;
}

StatusOr<serve::RuleClient> Connect(const Flags& flags) {
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));
  if (port == 0) {
    return InvalidArgumentError("--port=N is required for client commands");
  }
  serve::RuleClient client;
  DMC_RETURN_IF_ERROR(
      client.Connect(flags.Get("host", "127.0.0.1"), port,
                     flags.GetDouble("timeout", 10.0)));
  return client;
}

void PrintRules(const serve::Reply& reply) {
  std::printf("generation %llu, %zu rules\n",
              (unsigned long long)reply.generation, reply.rules.size());
  for (const ImplicationRule& r : reply.rules) {
    std::printf("%u => %u conf=%.4f hits=%u/%u\n", r.lhs, r.rhs,
                r.confidence(), r.hits(), r.lhs_ones);
  }
}

int RunQuery(const Flags& flags) {
  auto client = Connect(flags);
  if (!client.ok()) return Fail(client.status());
  StatusOr<serve::Reply> reply =
      InvalidArgumentError("one of --lhs / --rhs / --top is required");
  if (flags.Has("lhs")) {
    reply = client->QueryByAntecedent(
        static_cast<ColumnId>(flags.GetInt("lhs", 0)));
  } else if (flags.Has("rhs")) {
    reply = client->QueryByConsequent(
        static_cast<ColumnId>(flags.GetInt("rhs", 0)));
  } else if (flags.Has("top")) {
    reply = client->TopK(static_cast<uint32_t>(flags.GetInt("top", 10)));
  }
  if (!reply.ok()) return Fail(reply.status());
  PrintRules(*reply);
  return 0;
}

int RunAppend(const Flags& flags) {
  const std::string input = flags.Get("input");
  if (input.empty()) {
    std::fprintf(stderr, "dmc_serve append: --input=FILE is required\n");
    return 2;
  }
  auto matrix = ReadMatrixTextFile(input);
  if (!matrix.ok()) return Fail(matrix.status());
  auto client = Connect(flags);
  if (!client.ok()) return Fail(client.status());

  std::vector<std::vector<ColumnId>> rows(matrix->num_rows());
  for (RowId r = 0; r < matrix->num_rows(); ++r) {
    const auto row = matrix->Row(r);
    rows[r].assign(row.begin(), row.end());
  }
  const StatusOr<uint64_t> depth =
      client->AppendRows(matrix->num_columns(), rows);
  if (!depth.ok()) return Fail(depth.status());
  std::printf("appended %u rows, ingest queue depth %llu\n",
              matrix->num_rows(), (unsigned long long)*depth);
  return 0;
}

int RunEvict(const Flags& flags) {
  if (!flags.Has("rows")) {
    std::fprintf(stderr, "dmc_serve evict: --rows=N is required\n");
    return 2;
  }
  auto client = Connect(flags);
  if (!client.ok()) return Fail(client.status());
  const uint64_t rows = flags.GetInt("rows", 0);
  const StatusOr<uint64_t> depth = client->EvictRows(rows);
  if (!depth.ok()) return Fail(depth.status());
  std::printf("evicting %llu rows, ingest queue depth %llu\n",
              (unsigned long long)rows, (unsigned long long)*depth);
  return 0;
}

int RunStats(const Flags& flags) {
  auto client = Connect(flags);
  if (!client.ok()) return Fail(client.status());
  const StatusOr<serve::ServeStats> stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  struct Row {
    const char* name;
    uint64_t value;
  };
  const Row rows[] = {
      {"generation", stats->generation},
      {"num_rules", stats->num_rules},
      {"rows_mined", stats->rows_mined},
      {"batches_ingested", stats->batches_ingested},
      {"rows_ingested", stats->rows_ingested},
      {"pending_batches", stats->pending_batches},
      {"snapshots_published", stats->snapshots_published},
      {"requests_served", stats->requests_served},
      {"connections_accepted", stats->connections_accepted},
      {"connections_active", stats->connections_active},
      {"protocol_errors", stats->protocol_errors},
      {"io_errors", stats->io_errors},
      {"batches_dropped", stats->batches_dropped},
      {"batches_evicted", stats->batches_evicted},
      {"rows_evicted", stats->rows_evicted},
      {"evicts_dropped", stats->evicts_dropped},
  };
  for (const Row& row : rows) {
    std::printf("%s %llu\n", row.name, (unsigned long long)row.value);
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  if (command == "serve") return RunServe(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "append") return RunAppend(flags);
  if (command == "evict") return RunEvict(flags);
  if (command == "stats") return RunStats(flags);
  return Usage();
}

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) { return dmc::Run(argc, argv); }
