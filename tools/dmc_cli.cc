// dmc_cli — command-line front end for the whole library.
//
//   dmc_cli mine-imp  --input=FILE --minconf=0.9 [options]
//   dmc_cli mine-sim  --input=FILE --minsim=0.8  [options]
//   dmc_cli stats     --input=FILE
//   dmc_cli generate  --kind=weblog|linkgraph|news|dictionary|quest
//                     --output=FILE [--rows=N] [--cols=N] [--seed=N]
//                     [--stream]  (quest only: stream rows straight to
//                     disk in bounded memory — the scale mode for
//                     100M+-row matrices; output is byte-identical to
//                     the in-memory path)
//
// Common mining options:
//   --order=buckets|identity|sort   row order for the second pass
//   --no-hundred-phase              disable the 100%-rule pre-phase
//   --no-bitmap                     disable the DMC-bitmap fallback
//   --min-support=N --max-support=N support window (column pruning)
//   --threads=N                     parallel divide-and-conquer shards
//   --external --workdir=DIR        disk-based two-pass (mine-imp only)
//   --top=N                         print only the N strongest rules
//   --output=FILE                   write all rules to FILE
//
// Incremental mining & serving options (mine-imp / mine-sim):
//   --append=FILE[,FILE...]         mine --input as the initial batch,
//                                   then absorb each FILE as an append
//                                   batch with the incremental engine
//                                   (src/incr/; exact — the final rule
//                                   set equals a fresh mine of the
//                                   concatenation). Single-threaded,
//                                   in-memory path only.
//   --evict=N[,N...]                interleave explicit evictions with
//                                   the appends: after append batch i,
//                                   evict the oldest N_i rows; leftover
//                                   counts run after the last append.
//                                   Usable alone (evict straight from
//                                   the initial mine) — exact either
//                                   way, like --append.
//   --window-rows=N                 cap the mined window at the newest
//                                   N rows: the initial mine is trimmed
//                                   to N and every append auto-evicts
//                                   its overflow (the sliding-window
//                                   mode of src/incr/window_miner.h)
//   --serve-index=FILE              mine-imp: publish the mined rules
//                                   into a RuleIndex and save its
//                                   checksummed snapshot to FILE
//   --query-lhs=COL                 with --serve-index: reload the saved
//                                   index and print rules COL => *
//   --query-rhs=COL                 with --serve-index: reload the saved
//                                   index and print rules * => COL
//
// Sharded (multi-process) mining options (mine-imp / mine-sim):
//   --shard-workers=N               mine across N worker processes over
//                                   the disk-based two-pass pipeline
//                                   (src/shard/); byte-identical to a
//                                   single-process mine
//   --shard-tasks-per-worker=N      over-partitioning factor (default 2):
//                                   finer tasks reassign with less waste
//                                   when a worker dies
//   --shard-checkpoint-dir=DIR      write per-task result checkpoints;
//                                   with --resume, finished tasks are
//                                   loaded instead of re-mined
//   --shard-worker-metrics-dir=DIR  per-worker metrics JSONL, merged into
//                                   the --metrics-out document
//   --shard-no-degrade              fail cleanly instead of mining
//                                   leftover tasks in-process when the
//                                   worker fleet gives out
//   --shard-heartbeat-timeout=SECS  declare a silent worker dead after
//                                   this long (default 30)
//
// Observability options (mine-imp / mine-sim):
//   --metrics-out=FILE              write the run's metrics document
//                                   (schema_version 1 JSON; see
//                                   src/observe/stats_export.h)
//   --trace-out=FILE                write a Chrome-tracing JSON of the
//                                   mining phases (load in ui.perfetto.dev)
//   --progress[=ROWS]               print progress to stderr every ROWS
//                                   rows (default 65536)
//
// Robustness options:
//   --checkpoint=FILE               external mining: write a pass-1
//                                   checkpoint and keep bucket files
//   --resume                        external mining: skip pass 1 when the
//                                   checkpoint validates against the input
//   --io-retries=N                  retry transient file-open failures up
//                                   to N times (default 3)
//   --failpoints=SPEC               arm fault-injection sites, e.g.
//                                   "matrix.text.row=error@2" (testing)
//   --failpoint-seed=N              seed for probabilistic failpoints
//
// All file outputs (--output, --metrics-out, --trace-out, generate
// --output) are written atomically: a crash mid-write leaves the old
// file (or no file), never a torn one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/external_miner.h"
#include "shard/coordinator.h"
#include "incr/incr_miner.h"
#include "incr/window_miner.h"
#include "rules/rule_index.h"
#include "observe/metrics.h"
#include "observe/stats_export.h"
#include "observe/trace.h"
#include "util/atomic_io.h"
#include "util/failpoint.h"
#include "datagen/dictionary_gen.h"
#include "datagen/linkgraph_gen.h"
#include "datagen/news_gen.h"
#include "datagen/quest_gen.h"
#include "datagen/weblog_gen.h"
#include "matrix/column_stats.h"
#include "matrix/matrix_io.h"

namespace dmc {
namespace {

// Minimal flag parsing: --name=value and boolean --name.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      // Build key/value as named locals: assigning substr() temporaries
      // straight into the map trips a GCC 12 -Wrestrict false positive
      // (inlined basic_string::operator= self-overlap check).
      const size_t eq = arg.find('=');
      std::string key = arg.substr(2, eq == std::string::npos
                                          ? std::string::npos
                                          : eq - 2);
      std::string value = eq == std::string::npos ? "1" : arg.substr(eq + 1);
      values_[std::move(key)] = std::move(value);
    }
  }

  std::string Get(const std::string& name, const std::string& def = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  uint64_t GetInt(const std::string& name, uint64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end()
               ? def
               : static_cast<uint64_t>(std::atoll(it->second.c_str()));
  }
  bool GetBool(const std::string& name) const {
    return values_.count(name) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: dmc_cli <mine-imp|mine-sim|stats|generate> "
               "[--flag=value ...]\n(see the header of tools/dmc_cli.cc "
               "for the full flag list)\n");
  return 2;
}

DmcPolicy PolicyFromFlags(const Flags& flags) {
  DmcPolicy policy;
  const std::string order = flags.Get("order", "buckets");
  if (order == "identity") {
    policy.row_order = RowOrderPolicy::kIdentity;
  } else if (order == "sort") {
    policy.row_order = RowOrderPolicy::kExactSort;
  } else {
    policy.row_order = RowOrderPolicy::kDensityBuckets;
  }
  policy.hundred_percent_phase = !flags.GetBool("no-hundred-phase");
  policy.bitmap_fallback = !flags.GetBool("no-bitmap");
  return policy;
}

// Owns the registry/sink behind --metrics-out / --trace-out and hooks
// them (plus --progress) into the policy's ObserveContext.
class Observability {
 public:
  void Configure(const Flags& flags, DmcPolicy* policy) {
    metrics_out_ = flags.Get("metrics-out");
    trace_out_ = flags.Get("trace-out");
    if (!metrics_out_.empty()) policy->observe.metrics = &registry_;
    if (!trace_out_.empty()) policy->observe.trace = &trace_;
    if (flags.GetBool("progress")) {
      const uint64_t interval = flags.GetInt("progress", 1);
      policy->observe.progress_interval_rows =
          interval > 1 ? interval : 65536;
      policy->observe.progress = [](const ProgressUpdate& u) {
        std::fprintf(stderr,
                     "progress: %s %llu/%llu rows, %llu candidates, "
                     "%.2f MB%s\n",
                     u.phase, (unsigned long long)u.rows_processed,
                     (unsigned long long)u.total_rows,
                     (unsigned long long)u.live_candidates,
                     u.counter_bytes / (1024.0 * 1024.0),
                     u.shard >= 0 ? " (shard)" : "");
        return true;
      };
    }
  }

  /// Writes the requested output files; returns non-zero on failure.
  int Finish(MetricsReport report) {
    if (!metrics_out_.empty()) {
      report.metrics = &registry_;
      const Status st = ExportMetricsJsonFile(report, metrics_out_);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_out_.c_str());
    }
    if (!trace_out_.empty()) {
      std::ostringstream buffer;
      trace_.WriteChromeJson(buffer);
      const Status st = AtomicWriteFile(trace_out_, buffer.str());
      if (!st.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote trace to %s\n", trace_out_.c_str());
    }
    return 0;
  }

 private:
  MetricsRegistry registry_;
  TraceSink trace_;
  std::string metrics_out_;
  std::string trace_out_;
};

StatusOr<BinaryMatrix> LoadInput(const Flags& flags) {
  const std::string input = flags.Get("input");
  if (input.empty()) {
    return InvalidArgumentError("--input=FILE is required");
  }
  DMC_ASSIGN_OR_RETURN(BinaryMatrix m, ReadMatrixTextFile(input));
  const uint64_t min_support = flags.GetInt("min-support", 0);
  const uint64_t max_support =
      flags.GetInt("max-support", std::numeric_limits<uint64_t>::max());
  if (min_support > 0 ||
      max_support != std::numeric_limits<uint64_t>::max()) {
    PrunedMatrix pruned = SupportPruneColumns(m, min_support, max_support);
    std::fprintf(stderr, "support window [%llu, %llu]: %u of %u columns\n",
                 (unsigned long long)min_support,
                 (unsigned long long)max_support,
                 pruned.matrix.num_columns(), m.num_columns());
    m = std::move(pruned.matrix);
  }
  return m;
}

void ReportStats(const MiningStats& stats) {
  std::fprintf(stderr,
               "pre-scan %.3fs | 100%% phase %.3fs | sub-100%% %.3fs | "
               "total %.3fs\npeak counter memory %.2f MB (%zu candidates); "
               "bitmap fallback: %s\n",
               stats.prescan_seconds, stats.hundred_seconds(),
               stats.sub_seconds(), stats.total_seconds,
               stats.peak_counter_bytes / (1024.0 * 1024.0),
               stats.peak_candidates,
               stats.hundred_bitmap_triggered || stats.sub_bitmap_triggered
                   ? "used"
                   : "not needed");
}

template <typename RuleSetT>
int EmitRules(const RuleSetT& sorted, const Flags& flags) {
  const uint64_t top = flags.GetInt("top", 20);
  sorted.Print(std::cout, top);
  const std::string output = flags.Get("output");
  if (!output.empty()) {
    std::ostringstream buffer;
    sorted.Print(buffer, 0);
    const Status st = AtomicWriteFile(output, buffer.str());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rules to %s\n", sorted.size(),
                 output.c_str());
  }
  return 0;
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> out;
  std::istringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Narrates one EvictBatch (explicit --evict entry or window slide).
template <typename MinerT>
int EvictOnce(uint64_t k, MinerT* miner) {
  IncrEvictStats estats;
  const Status st = miner->EvictBatch(k, &estats);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "evict -%llu rows | %llu updated, %llu killed, "
               "%llu regenerated | %llu regen pairs | %.3fs\n",
               (unsigned long long)estats.rows_evicted,
               (unsigned long long)estats.rules_updated,
               (unsigned long long)estats.candidates_killed,
               (unsigned long long)estats.candidates_regenerated,
               (unsigned long long)estats.regen_pairs_examined,
               estats.seconds);
  return 0;
}

// Folds each --append file into `miner`, interleaved with the --evict
// counts (append batch i, then evict count i; leftover counts run after
// the last append), narrating per-op work.
template <typename MinerT>
int AppendBatches(const std::string& append_list,
                  const std::string& evict_list, MinerT* miner) {
  const std::vector<std::string> appends = SplitCsv(append_list);
  const std::vector<std::string> evicts = SplitCsv(evict_list);
  for (size_t i = 0; i < appends.size() || i < evicts.size(); ++i) {
    if (i < appends.size()) {
      const std::string& path = appends[i];
      auto delta = ReadMatrixTextFile(path);
      if (!delta.ok()) {
        std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
        return 1;
      }
      IncrAppendStats astats;
      IncrEvictStats slide;
      const Status st = miner->AppendBatch(*delta, &astats, &slide);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "append %s: +%llu rows | %llu updated, %llu killed, "
                   "%llu revived | %llu delta pairs | %.3fs\n",
                   path.c_str(), (unsigned long long)astats.rows_appended,
                   (unsigned long long)astats.rules_updated,
                   (unsigned long long)astats.candidates_killed,
                   (unsigned long long)astats.candidates_revived,
                   (unsigned long long)astats.delta_pairs_examined,
                   astats.seconds);
      if (slide.rows_evicted > 0) {
        std::fprintf(stderr,
                     "  window slide: -%llu rows | %llu killed, "
                     "%llu regenerated\n",
                     (unsigned long long)slide.rows_evicted,
                     (unsigned long long)slide.candidates_killed,
                     (unsigned long long)slide.candidates_regenerated);
      }
    }
    if (i < evicts.size()) {
      const uint64_t k =
          static_cast<uint64_t>(std::atoll(evicts[i].c_str()));
      const int rc = EvictOnce(k, miner);
      if (rc != 0) return rc;
    }
  }
  std::fprintf(stderr,
               "incremental totals: %llu batches, %llu rows, "
               "%llu killed, %llu revived, %llu evict batches, "
               "%llu rows evicted, %.2f MB postings\n",
               (unsigned long long)miner->cumulative().batches,
               (unsigned long long)miner->cumulative().rows_total,
               (unsigned long long)miner->cumulative().candidates_killed,
               (unsigned long long)miner->cumulative().candidates_revived,
               (unsigned long long)miner->cumulative().evict_batches,
               (unsigned long long)miner->cumulative().rows_evicted,
               miner->MemoryBytes() / (1024.0 * 1024.0));
  return 0;
}

// --serve-index=FILE: publish `rules` into a RuleIndex, persist its
// snapshot, then answer any --query-lhs / --query-rhs probes from a
// fresh Load of the saved file — the full save/load/query round trip.
int ServeIndex(const ImplicationRuleSet& rules, const Flags& flags) {
  const std::string path = flags.Get("serve-index");
  RuleIndex index;
  index.Publish(rules);
  Status st = index.Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote rule index (%zu rules, generation %llu) to %s\n",
               index.snapshot()->size(),
               (unsigned long long)index.snapshot()->generation(),
               path.c_str());
  if (!flags.GetBool("query-lhs") && !flags.GetBool("query-rhs")) return 0;
  RuleIndex served;
  st = served.Load(path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto snapshot = served.snapshot();
  if (flags.GetBool("query-lhs")) {
    const ColumnId lhs = static_cast<ColumnId>(flags.GetInt("query-lhs", 0));
    for (const ImplicationRule& r : snapshot->QueryByAntecedent(lhs)) {
      std::printf("%s\n", r.ToString().c_str());
    }
  }
  if (flags.GetBool("query-rhs")) {
    const ColumnId rhs = static_cast<ColumnId>(flags.GetInt("query-rhs", 0));
    for (const ImplicationRule& r : snapshot->QueryByConsequent(rhs)) {
      std::printf("%s\n", r.ToString().c_str());
    }
  }
  return 0;
}

shard::ShardOptions ShardOptionsFromFlags(const Flags& flags) {
  shard::ShardOptions s;
  s.num_workers = static_cast<int>(flags.GetInt("shard-workers", 2));
  s.tasks_per_worker =
      static_cast<int>(flags.GetInt("shard-tasks-per-worker", 2));
  s.heartbeat_timeout_seconds =
      flags.GetDouble("shard-heartbeat-timeout", 30.0);
  s.degrade_to_in_process = !flags.GetBool("shard-no-degrade");
  s.checkpoint_dir = flags.Get("shard-checkpoint-dir");
  // --resume covers both checkpoint layers: the external miner's pass-1
  // checkpoint (--checkpoint=FILE) and the per-task result checkpoints.
  s.resume = flags.GetBool("resume") && !s.checkpoint_dir.empty();
  s.worker_metrics_dir = flags.Get("shard-worker-metrics-dir");
  s.io.checkpoint_path = flags.Get("checkpoint");
  s.io.resume = flags.GetBool("resume");
  s.io.retry.max_attempts = static_cast<int>(flags.GetInt("io-retries", 3));
  return s;
}

void ReportShardStats(const shard::ShardMiningStats& s) {
  std::fprintf(stderr,
               "sharded: %d tasks, %d workers spawned, pass1 %.3fs%s, "
               "mine %.3fs, total %.3fs\n"
               "fleet: %d died, %llu reassigned, %llu heartbeats, "
               "%d checkpoint hits, %d degraded to in-process\n",
               s.tasks_total, s.workers_spawned, s.pass1_seconds,
               s.resumed ? " (resumed)" : "", s.mine_seconds,
               s.total_seconds, s.workers_died,
               (unsigned long long)s.tasks_reassigned,
               (unsigned long long)s.heartbeats, s.checkpoint_hits,
               s.degraded_tasks);
}

int MineImp(const Flags& flags) {
  ImplicationMiningOptions options;
  options.min_confidence = flags.GetDouble("minconf", 0.9);
  options.policy = PolicyFromFlags(flags);
  Observability observe;
  observe.Configure(flags, &options.policy);

  MetricsReport report;
  report.tool = "dmc_cli";
  report.dataset = flags.Get("input");
  report.labels["command"] = "mine-imp";

  if ((flags.GetBool("append") || flags.GetBool("evict") ||
       flags.GetBool("window-rows")) &&
      (flags.GetBool("external") || flags.GetBool("shard-workers") ||
       flags.GetInt("threads", 1) > 1)) {
    std::fprintf(stderr,
                 "--append/--evict/--window-rows use the in-memory "
                 "incremental engine; they are incompatible with "
                 "--external, --shard-workers and --threads\n");
    return 2;
  }

  if (flags.GetBool("shard-workers")) {
    if (flags.GetInt("threads", 1) > 1) {
      std::fprintf(stderr,
                   "--shard-workers and --threads are incompatible; the "
                   "sharded pipeline parallelizes across processes\n");
      return 2;
    }
    const std::string input = flags.Get("input");
    const std::string work_dir = flags.Get("workdir", "/tmp");
    shard::ShardOptions sopts = ShardOptionsFromFlags(flags);
    shard::ShardMiningStats sstats;
    auto rules = shard::MineImplicationsSharded(input, options, work_dir,
                                                sopts, &sstats);
    if (!rules.ok()) {
      std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
      return 1;
    }
    ReportShardStats(sstats);
    std::fprintf(stderr, "%zu rules\n", rules->size());
    report.shard = &sstats;
    report.rules_total = static_cast<int64_t>(rules->size());
    const int rc = EmitRules(rules->SortedByConfidence(), flags);
    const int observe_rc = observe.Finish(report);
    return rc != 0 ? rc : observe_rc;
  }

  if (flags.GetBool("external")) {
    const std::string input = flags.Get("input");
    const std::string work_dir = flags.Get("workdir", "/tmp");
    ExternalIoOptions io;
    io.checkpoint_path = flags.Get("checkpoint");
    io.resume = flags.GetBool("resume");
    io.retry.max_attempts =
        static_cast<int>(flags.GetInt("io-retries", 3));
    ExternalMiningStats stats;
    auto rules =
        MineImplicationsFromFile(input, options, work_dir, io, &stats);
    if (!rules.ok()) {
      std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "external: pass1 %.3fs%s, partition %.3fs (%zu buckets), "
                 "mine %.3fs\n",
                 stats.pass1_seconds, stats.resumed ? " (resumed)" : "",
                 stats.partition_seconds, stats.bucket_files,
                 stats.mine_seconds);
    std::fprintf(stderr, "%zu rules\n", rules->size());
    report.external = &stats;
    report.rules_total = static_cast<int64_t>(rules->size());
    const int rc = EmitRules(rules->SortedByConfidence(), flags);
    const int observe_rc = observe.Finish(report);
    return rc != 0 ? rc : observe_rc;
  }

  auto matrix = LoadInput(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  MiningStats stats;
  ParallelMiningStats pstats;
  StatusOr<ImplicationRuleSet> rules = ImplicationRuleSet{};
  const std::string append = flags.Get("append");
  const std::string evict = flags.Get("evict");
  const uint64_t window_rows = flags.GetInt("window-rows", 0);
  if (!append.empty() || !evict.empty() || window_rows > 0) {
    auto miner = WindowedImplicationMiner::FromBatchMine(*matrix, options,
                                                         window_rows, &stats);
    if (!miner.ok()) {
      std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
      return 1;
    }
    if (window_rows > 0) {
      std::fprintf(stderr, "window: newest %llu rows (holding %llu)\n",
                   (unsigned long long)window_rows,
                   (unsigned long long)miner->num_rows());
    }
    ReportStats(stats);
    report.mining = &stats;
    const int append_rc = AppendBatches(append, evict, &*miner);
    if (append_rc != 0) return append_rc;
    rules = miner->rules();
  } else if (threads > 1) {
    ParallelOptions p;
    p.num_threads = threads;
    rules = MineImplicationsParallel(*matrix, options, p, &pstats);
    std::fprintf(stderr, "parallel: %u shards, wall %.3fs (work %.3fs)\n",
                 pstats.shards, pstats.total_seconds,
                 pstats.sum_shard_seconds);
    report.parallel = &pstats;
  } else {
    rules = MineImplications(*matrix, options, &stats);
    if (rules.ok()) ReportStats(stats);
    report.mining = &stats;
  }
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu rules at confidence >= %.3f\n", rules->size(),
               options.min_confidence);
  report.rules_total = static_cast<int64_t>(rules->size());
  int rc = EmitRules(rules->SortedByConfidence(), flags);
  if (rc == 0 && flags.GetBool("serve-index")) {
    rc = ServeIndex(*rules, flags);
  }
  const int observe_rc = observe.Finish(report);
  return rc != 0 ? rc : observe_rc;
}

int MineSim(const Flags& flags) {
  SimilarityMiningOptions options;
  options.min_similarity = flags.GetDouble("minsim", 0.8);
  options.policy = PolicyFromFlags(flags);
  Observability observe;
  observe.Configure(flags, &options.policy);

  MetricsReport report;
  report.tool = "dmc_cli";
  report.dataset = flags.Get("input");
  report.labels["command"] = "mine-sim";

  if ((flags.GetBool("append") || flags.GetBool("evict") ||
       flags.GetBool("window-rows")) &&
      (flags.GetBool("shard-workers") || flags.GetInt("threads", 1) > 1)) {
    std::fprintf(stderr,
                 "--append/--evict/--window-rows use the in-memory "
                 "incremental engine; they are incompatible with "
                 "--shard-workers and --threads\n");
    return 2;
  }

  if (flags.GetBool("shard-workers")) {
    if (flags.GetInt("threads", 1) > 1) {
      std::fprintf(stderr,
                   "--shard-workers and --threads are incompatible; the "
                   "sharded pipeline parallelizes across processes\n");
      return 2;
    }
    const std::string input = flags.Get("input");
    const std::string work_dir = flags.Get("workdir", "/tmp");
    shard::ShardOptions sopts = ShardOptionsFromFlags(flags);
    shard::ShardMiningStats sstats;
    auto pairs = shard::MineSimilaritiesSharded(input, options, work_dir,
                                                sopts, &sstats);
    if (!pairs.ok()) {
      std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
      return 1;
    }
    ReportShardStats(sstats);
    std::fprintf(stderr, "%zu pairs\n", pairs->size());
    report.shard = &sstats;
    report.rules_total = static_cast<int64_t>(pairs->size());
    const int rc = EmitRules(pairs->SortedBySimilarity(), flags);
    const int observe_rc = observe.Finish(report);
    return rc != 0 ? rc : observe_rc;
  }

  auto matrix = LoadInput(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  const uint32_t threads =
      static_cast<uint32_t>(flags.GetInt("threads", 1));
  MiningStats stats;
  ParallelMiningStats pstats;
  StatusOr<SimilarityRuleSet> pairs = SimilarityRuleSet{};
  const std::string append = flags.Get("append");
  const std::string evict = flags.Get("evict");
  const uint64_t window_rows = flags.GetInt("window-rows", 0);
  if (!append.empty() || !evict.empty() || window_rows > 0) {
    auto miner = WindowedSimilarityMiner::FromBatchMine(*matrix, options,
                                                        window_rows, &stats);
    if (!miner.ok()) {
      std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
      return 1;
    }
    if (window_rows > 0) {
      std::fprintf(stderr, "window: newest %llu rows (holding %llu)\n",
                   (unsigned long long)window_rows,
                   (unsigned long long)miner->num_rows());
    }
    ReportStats(stats);
    report.mining = &stats;
    const int append_rc = AppendBatches(append, evict, &*miner);
    if (append_rc != 0) return append_rc;
    pairs = miner->pairs();
  } else if (threads > 1) {
    ParallelOptions p;
    p.num_threads = threads;
    pairs = MineSimilaritiesParallel(*matrix, options, p, &pstats);
    report.parallel = &pstats;
  } else {
    pairs = MineSimilarities(*matrix, options, &stats);
    if (pairs.ok()) ReportStats(stats);
    report.mining = &stats;
  }
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu pairs at similarity >= %.3f\n", pairs->size(),
               options.min_similarity);
  report.rules_total = static_cast<int64_t>(pairs->size());
  const int rc = EmitRules(pairs->SortedBySimilarity(), flags);
  const int observe_rc = observe.Finish(report);
  return rc != 0 ? rc : observe_rc;
}

int Stats(const Flags& flags) {
  auto matrix = LoadInput(flags);
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  const MatrixSummary s = Summarize(*matrix);
  std::printf("rows: %u\ncolumns: %u\nones: %zu\n", s.rows, s.columns,
              s.ones);
  std::printf("row density: mean %.2f, max %zu\n", s.mean_row_density,
              s.max_row_density);
  std::printf("column ones: mean %.2f, max %zu\n", s.mean_column_ones,
              s.max_column_ones);
  const auto hist = ComputeColumnDensityHistogram(*matrix);
  std::printf("columns with >= 2 ones: %llu, >= 10: %llu, >= 100: %llu\n",
              (unsigned long long)hist.ColumnsWithAtLeast(2),
              (unsigned long long)hist.ColumnsWithAtLeast(10),
              (unsigned long long)hist.ColumnsWithAtLeast(100));
  return 0;
}

int Generate(const Flags& flags) {
  const std::string kind = flags.Get("kind", "quest");
  const std::string output = flags.Get("output");
  if (output.empty()) {
    std::fprintf(stderr, "--output=FILE is required\n");
    return 2;
  }
  const uint64_t rows = flags.GetInt("rows", 10000);
  const uint64_t cols = flags.GetInt("cols", 2000);
  const uint64_t seed = flags.GetInt("seed", 42);

  if (flags.GetBool("stream")) {
    if (kind != "quest") {
      std::fprintf(stderr, "--stream supports --kind=quest only\n");
      return 2;
    }
    QuestOptions o;
    o.num_transactions = static_cast<uint32_t>(rows);
    o.num_items = static_cast<uint32_t>(cols);
    o.seed = seed;
    const Status st = GenerateQuestFile(o, output);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "streamed %llu x %llu quest matrix to %s\n",
                 (unsigned long long)rows, (unsigned long long)cols,
                 output.c_str());
    return 0;
  }

  BinaryMatrix m;
  if (kind == "weblog") {
    WebLogOptions o;
    o.num_clients = static_cast<uint32_t>(rows);
    o.num_urls = static_cast<uint32_t>(cols);
    o.seed = seed;
    m = GenerateWebLog(o);
  } else if (kind == "linkgraph") {
    LinkGraphOptions o;
    o.num_pages = static_cast<uint32_t>(rows);
    o.seed = seed;
    m = GenerateLinkGraph(o);
  } else if (kind == "news") {
    NewsOptions o;
    o.num_docs = static_cast<uint32_t>(rows);
    o.background_vocab = static_cast<uint32_t>(cols);
    o.seed = seed;
    m = GenerateNews(o).matrix;
  } else if (kind == "dictionary") {
    DictionaryOptions o;
    o.num_head_words = static_cast<uint32_t>(cols);
    o.num_definition_words = static_cast<uint32_t>(rows);
    o.seed = seed;
    m = GenerateDictionary(o).matrix;
  } else if (kind == "quest") {
    QuestOptions o;
    o.num_transactions = static_cast<uint32_t>(rows);
    o.num_items = static_cast<uint32_t>(cols);
    o.seed = seed;
    m = GenerateQuest(o);
  } else {
    std::fprintf(stderr, "unknown --kind=%s\n", kind.c_str());
    return 2;
  }
  const Status st = WriteMatrixTextFile(m, output);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %u x %u matrix (%zu ones) to %s\n",
               m.num_rows(), m.num_columns(), m.num_ones(), output.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  if (flags.GetBool("failpoints")) {
    std::string spec = flags.Get("failpoints");
    if (spec == "1") spec.clear();  // bare --failpoints: record-only mode
    if (flags.GetBool("failpoint-seed")) {
      if (!spec.empty()) spec += ';';
      spec += "seed=" + flags.Get("failpoint-seed");
    }
    const Status st = fail::Configure(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "--failpoints: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (command == "mine-imp") return MineImp(flags);
  if (command == "mine-sim") return MineSim(flags);
  if (command == "stats") return Stats(flags);
  if (command == "generate") return Generate(flags);
  return Usage();
}

}  // namespace
}  // namespace dmc

int main(int argc, char** argv) { return dmc::Run(argc, argv); }
