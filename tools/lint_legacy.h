// dmc_lint v1 — the original line/substring rule engine, frozen.
//
// Kept verbatim (modulo namespacing) as the reference implementation
// for the v1-vs-v2 differential parity test: the token-based engine in
// lint_lib.{h,cc} must reproduce these verdicts byte-for-byte over the
// whole src/ tree and the non-regression fixture corpus. The one class
// of intentional divergence is the v1 scrubber's blind spots — raw
// string literals and line-spliced comments — where v1 misfires on
// banned identifiers that are really data; those inputs live under
// tests/testdata/lint/regression/ and are asserted clean under v2 only.
//
// Do not add rules here; new rules go in the token engine.

#ifndef DMC_TOOLS_LINT_LEGACY_H_
#define DMC_TOOLS_LINT_LEGACY_H_

#include <set>
#include <string>
#include <vector>

#include "tools/lint_lib.h"

namespace dmc {
namespace lint {
namespace legacy {

/// v1 scrubber: blanks //, /* */ comments and plain "..."/'...' literals
/// (no raw-string or line-splice awareness — that is the point).
std::string ScrubSource(const std::string& content);

/// v1 Status/StatusOr function-name harvest over scrubbed text.
std::set<std::string> CollectStatusFunctions(const std::string& content);

/// v1 rule engine over one file (the eight original rules).
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content,
                              const std::set<std::string>& status_functions);

/// v1 tree walk: harvest registry, lint every .h/.cc/.cpp under root.
std::vector<Finding> LintTree(const std::string& root);

}  // namespace legacy
}  // namespace lint
}  // namespace dmc

#endif  // DMC_TOOLS_LINT_LEGACY_H_
