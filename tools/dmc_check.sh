#!/usr/bin/env bash
# dmc_check.sh — build (if needed) and run the dmc_lint static checker
# over the library tree and the tools themselves. Usage:
#
#   tools/dmc_check.sh [path ...]      # default paths: src/ tools/
#
# Exits nonzero when any lint rule fires. See tools/lint_lib.h for the
# rule list and the suppression syntax.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${DMC_BUILD_DIR:-${repo_root}/build}"

if [[ ! -x "${build_dir}/tools/dmc_lint" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" --target dmc_lint -j >/dev/null
fi

targets=("$@")
if [[ ${#targets[@]} -eq 0 ]]; then
  targets=("${repo_root}/src" "${repo_root}/tools")
fi

exec "${build_dir}/tools/dmc_lint" "${targets[@]}"
