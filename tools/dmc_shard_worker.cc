// dmc_shard_worker: one mining worker process of the shard coordinator
// (src/shard/). Not meant to be run by hand — the coordinator fork/execs
// it with two pipe descriptors and speaks the shard protocol over them:
//
//   dmc_shard_worker --in-fd=3 --out-fd=4 [--metrics-out=PATH]
//
// Exit code 0 on an orderly shutdown (kShutdown or coordinator EOF),
// 1 on a transport/protocol failure. Everything interesting happens in
// shard/shard_worker.cc.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "shard/shard_worker.h"

namespace {

bool ParseIntFlag(const char* arg, const char* name, int* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoi(arg + n + 1);
  return true;
}

bool ParseStringFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dmc::shard::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    if (ParseIntFlag(argv[i], "--in-fd", &options.in_fd)) continue;
    if (ParseIntFlag(argv[i], "--out-fd", &options.out_fd)) continue;
    if (ParseStringFlag(argv[i], "--metrics-out", &options.metrics_out)) {
      continue;
    }
    std::fprintf(stderr, "dmc_shard_worker: unknown flag %s\n", argv[i]);
    return 1;
  }
  if (options.in_fd < 0 || options.out_fd < 0) {
    std::fprintf(stderr,
                 "dmc_shard_worker: --in-fd and --out-fd are required\n");
    return 1;
  }
  const dmc::Status st = dmc::shard::RunShardWorker(options);
  if (!st.ok()) {
    std::fprintf(stderr, "dmc_shard_worker: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
