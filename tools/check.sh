#!/usr/bin/env bash
# check.sh — one-shot correctness gate. Runs, in order:
#
#   (a) warnings-as-errors build + full ctest        (preset: default)
#   (b) ASan+UBSan build + full ctest                (preset: asan-ubsan)
#   (c) TSan build + parallel_test + parallel_stress_test  (preset: tsan)
#   (d) dmc_lint over src/
#
# Exits nonzero on the first failure. Pass --fast to skip the sanitizer
# stages (a + d only), e.g. for a pre-commit hook.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==== %s ====\n' "$*"; }

step "(a) werror build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "${jobs}"
ctest --preset default -j "${jobs}"

if [[ "${fast}" -eq 0 ]]; then
  step "(b) asan-ubsan build + ctest"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "${jobs}"
  ctest --preset asan-ubsan -j "${jobs}"

  step "(c) tsan build + parallel tests + stress test"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${jobs}"
  ctest --test-dir build-tsan -R 'Parallel|ColumnShards' \
    -j "${jobs}" --output-on-failure
fi

step "(d) dmc_lint over src/"
DMC_BUILD_DIR="${repo_root}/build" "${repo_root}/tools/dmc_check.sh"

step "all checks passed"
