#!/usr/bin/env bash
# check.sh — one-shot correctness gate. Runs, in order:
#
#   (a) warnings-as-errors build + full ctest        (preset: default)
#   (b) ASan+UBSan build + full ctest                (preset: asan-ubsan)
#   (c) TSan build + parallel/observe/cancellation/fault/rule-index/
#       serve/shard-coordinator stress
#   (d) dmc_lint over src/ + tools/
#   (e) metrics-schema smoke check (dmc_cli --metrics-out)
#   (e2) serve smoke: dmc_serve daemon round-trip over a real socket
#   (f) fault-injection sweep under ASan+UBSan (differential exactness)
#   (f2) kill-a-worker shard sweep under ASan+UBSan (byte-identity under
#        SIGKILL/crash/hang/failpoints, sanitized coordinator AND workers)
#   (g) incremental-vs-batch differential sweep under ASan+UBSan
#   (g2) sliding-window differential sweep under ASan+UBSan (append/evict
#        schedules byte-identical to fresh window mines)
#   (h) coverage build + gate against tools/coverage_floor.txt
#   (i) perf smoke: release-native build + bench_kernels --json-out schema
#   (i2) dense-scan bench regression gate vs the committed BENCH_bitmap.json
#        (>10% rows_per_sec drop on any scan_*_dense variant fails)
#   (i3) incremental/window scenario gate vs the committed BENCH_window.json
#        (>10% rows_per_sec drop on any append/slide scenario fails)
#   (j) clang -Wthread-safety -Werror build          (preset: thread-safety)
#   (k) clang-tidy over the concurrency-sensitive TUs (.clang-tidy profile)
#
# Stages (j) and (k) need clang++ / clang-tidy on PATH and are skipped
# with a notice when the toolchain lacks them (the annotations compile to
# nothing on GCC, so the default build still exercises the same sources).
#
# Exits nonzero on the first failure. Pass --fast to skip the sanitizer,
# coverage, perf and clang-analysis stages, e.g. for a pre-commit hook.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==== %s ====\n' "$*"; }

step "(a) werror build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "${jobs}"
ctest --preset default -j "${jobs}"

if [[ "${fast}" -eq 0 ]]; then
  step "(b) asan-ubsan build + ctest"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "${jobs}"
  ctest --preset asan-ubsan -j "${jobs}"

  step "(c) tsan build + parallel/observe/cancellation/fault/rule-index/serve/shard/window"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${jobs}"
  # RuleIndexConcurrency races queries against Publish/Load snapshot swaps;
  # ServeStressTest races wire readers against the ingest thread's publishes;
  # ShardStressTest races concurrent shard coordinators (fork/exec fleets)
  # over one shared MetricsRegistry; WindowStressTest races wire readers
  # against interleaved append/evict publishes and window auto-slides.
  ctest --test-dir build-tsan \
    -R 'Parallel|ColumnShards|Observe|Cancel|Fault|Kernel|RuleIndex|Serve|ShardStress|WindowStress' \
    -j "${jobs}" --output-on-failure
fi

step "(d) dmc_lint over src/ + tools/"
DMC_BUILD_DIR="${repo_root}/build" "${repo_root}/tools/dmc_check.sh"

step "(e) metrics-schema smoke check"
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "${metrics_tmp}"' EXIT
"${repo_root}/build/tools/dmc_cli" mine-imp \
  --input="${repo_root}/tests/testdata/metrics/fixture_matrix.txt" \
  --minconf=0.8 --metrics-out="${metrics_tmp}/metrics.json" >/dev/null
for field in '"schema_version": 1' '"mining"' '"peak_counter_bytes"' \
             '"rules_total"'; do
  grep -qF "${field}" "${metrics_tmp}/metrics.json" || {
    echo "metrics schema smoke check failed: missing ${field}" >&2
    exit 1
  }
done
echo "metrics schema OK"

step "(e2) serve smoke: dmc_serve daemon round-trip"
# Boots the daemon on an ephemeral port against the fixture matrix, then
# drives it with the client subcommands: stats must show the seed
# generation, a query must answer, an append must get mined and
# published (generation bump), and SIGTERM must drain to a clean exit.
serve_log="${metrics_tmp}/serve.log"
fixture="${repo_root}/tests/testdata/metrics/fixture_matrix.txt"
dmc_serve="${repo_root}/build/tools/dmc_serve"
"${dmc_serve}" serve --input="${fixture}" --minconf=0.5 --port=0 \
  >"${serve_log}" &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "${serve_log}")"
  [[ -n "${port}" ]] && break
  sleep 0.05
done
if [[ -z "${port}" ]]; then
  echo "dmc_serve never announced its port" >&2
  kill "${serve_pid}" 2>/dev/null || true
  exit 1
fi
stats_out="$("${dmc_serve}" stats --port="${port}")"
grep -q '^generation 1$' <<<"${stats_out}" || {
  echo "serve smoke: unexpected seed stats" >&2
  kill -TERM "${serve_pid}"
  exit 1
}
query_out="$("${dmc_serve}" query --port="${port}" --top=5)"
grep -q '^generation 1,' <<<"${query_out}" || {
  echo "serve smoke: query against the seed snapshot failed" >&2
  kill -TERM "${serve_pid}"
  exit 1
}
"${dmc_serve}" append --port="${port}" --input="${fixture}" >/dev/null
gen=""
for _ in $(seq 1 100); do
  gen="$("${dmc_serve}" stats --port="${port}" \
    | sed -n 's/^generation \([0-9][0-9]*\)$/\1/p')"
  [[ "${gen}" == "2" ]] && break
  sleep 0.05
done
if [[ "${gen}" != "2" ]]; then
  echo "serve smoke: appended batch was never published" >&2
  kill -TERM "${serve_pid}"
  exit 1
fi
kill -TERM "${serve_pid}"
wait "${serve_pid}"
grep -q '^drained:' "${serve_log}" || {
  echo "serve smoke: daemon did not drain cleanly" >&2
  exit 1
}
# In-process load smoke: bench_serve spins up its own server and fails
# itself on errors, zero published snapshots, or absurdly low throughput.
cmake --build --preset default -j "${jobs}" --target bench_serve >/dev/null
"${repo_root}/build/bench/bench_serve" --smoke >/dev/null
echo "serve smoke OK"

if [[ "${fast}" -eq 0 ]]; then
  step "(f) fault-injection sweep under asan-ubsan"
  # The differential sweep injects faults at every registered I/O site and
  # proves each run either fails cleanly or reproduces the fault-free rule
  # set exactly. Running it under ASan+UBSan additionally proves the error
  # paths leak nothing and tear nothing.
  sweep_log="$(mktemp)"
  ctest --test-dir build-asan -R 'FaultInjection' \
    -j "${jobs}" --output-on-failure | tee "${sweep_log}"
  # ctest can exit 0 without running anything (e.g. bad --test-dir);
  # insist the sweep actually executed tests.
  grep -q 'tests passed' "${sweep_log}" || {
    echo "fault-injection sweep did not run" >&2
    rm -f "${sweep_log}"
    exit 1
  }
  rm -f "${sweep_log}"

  step "(f2) kill-a-worker shard sweep under asan-ubsan"
  # The shard differential battery SIGKILLs workers, arms crash/hang
  # hooks in every child, points the coordinator at an unexecutable
  # binary, forces the shard.* failpoints, and tears task checkpoints —
  # every run must end byte-identical to the single-process miner or
  # with a clean Status. The worker binary is compile-defined from the
  # same build tree, so the forked children are sanitized too.
  shard_log="$(mktemp)"
  ctest --test-dir build-asan -R 'ShardDifferential|ShardProtocol|ShardCheckpoint|TaskFingerprint|ShardMerge' \
    -j "${jobs}" --output-on-failure | tee "${shard_log}"
  grep -q 'tests passed' "${shard_log}" || {
    echo "shard kill-a-worker sweep did not run" >&2
    rm -f "${shard_log}"
    exit 1
  }
  rm -f "${shard_log}"

  step "(g) incremental-vs-batch differential sweep under asan-ubsan"
  # The battery appends randomized batch schedules (empty batches,
  # single rows, all-zero rows, widening deltas) and insists the
  # incremental rule set is byte-identical to a fresh batch mine of the
  # concatenation, across every merge kernel. Under ASan+UBSan it also
  # proves the append hot path stays clean.
  incr_log="$(mktemp)"
  ctest --test-dir build-asan -R 'Incr|RuleIndex|SeedStability' \
    -j "${jobs}" --output-on-failure | tee "${incr_log}"
  grep -q 'tests passed' "${incr_log}" || {
    echo "incremental differential sweep did not run" >&2
    rm -f "${incr_log}"
    exit 1
  }
  rm -f "${incr_log}"

  step "(g2) sliding-window differential sweep under asan-ubsan"
  # The battery drives randomized append/evict schedules (plus the
  # count-bounded auto-slide) through the windowed miners and insists
  # rules AND memory accounting stay byte-identical to a fresh batch
  # mine of the surviving window, across every merge kernel. Under
  # ASan+UBSan it also proves the eviction hot path stays clean.
  window_log="$(mktemp)"
  ctest --test-dir build-asan \
    -R 'WindowDifferential|WindowWidening|WindowedMiner|WindowEdge' \
    -j "${jobs}" --output-on-failure | tee "${window_log}"
  grep -q 'tests passed' "${window_log}" || {
    echo "sliding-window differential sweep did not run" >&2
    rm -f "${window_log}"
    exit 1
  }
  rm -f "${window_log}"

  step "(h) coverage build + floor gate"
  "${repo_root}/tools/coverage.sh"

  step "(i) perf smoke: release-native bench_kernels --json-out"
  # Builds the host-tuned release preset and runs the kernel microbench at a
  # tiny scale, then checks the emitted JSON carries the committed schema
  # (schema_version / records / bench / rows_per_sec / peak_counter_bytes).
  # This is a plumbing check, not a performance gate: it proves the preset
  # configures, the SIMD dispatch links, and --json-out round-trips.
  cmake --preset release-native >/dev/null
  cmake --build --preset release-native -j "${jobs}" --target bench_kernels
  "${repo_root}/build-native/bench/bench_kernels" --scale=0.25 \
    --json-out="${metrics_tmp}/bench.json" >/dev/null
  for field in '"schema_version": 1' '"records"' '"bench"' '"rows_per_sec"' \
               '"peak_counter_bytes"'; do
    grep -qF "${field}" "${metrics_tmp}/bench.json" || {
      echo "bench json schema smoke check failed: missing ${field}" >&2
      exit 1
    }
  done
  echo "bench json schema OK"

  step "(i2) dense-scan bench regression gate vs BENCH_bitmap.json"
  # Re-runs the dense scans at the committed baseline's scale and lets
  # bench_kernels compare rows_per_sec per kernel variant against
  # BENCH_bitmap.json (the curve recorded with the hybrid posting
  # substrate); any variant dropping below 90% of the committed
  # throughput fails the gate. This one IS a performance gate — noise on
  # a loaded machine can trip it, in which case rerun on a quiet one.
  "${repo_root}/build-native/bench/bench_kernels" --scale=1 \
    --json-out="${metrics_tmp}/bench_full.json" \
    --baseline="${repo_root}/BENCH_bitmap.json" >/dev/null || {
    echo "dense-scan throughput regression vs BENCH_bitmap.json" >&2
    exit 1
  }
  echo "dense-scan regression gate OK"

  step "(i3) incremental/window scenario gate vs BENCH_window.json"
  # Re-runs the append-batch and window-slide scenarios (google-benchmark
  # microbenches filtered out) and compares each scenario's rows_per_sec
  # against the committed BENCH_window.json; any scenario dropping below
  # 90% of the committed throughput fails. Like (i2) this IS a
  # performance gate — rerun on a quiet machine if noise trips it.
  cmake --build --preset release-native -j "${jobs}" --target bench_micro
  "${repo_root}/build-native/bench/bench_micro" --benchmark_filter='^$' \
    --json-out="${metrics_tmp}/bench_window.json" \
    --baseline="${repo_root}/BENCH_window.json" >/dev/null || {
    echo "incremental/window scenario regression vs BENCH_window.json" >&2
    exit 1
  }
  echo "incremental/window scenario gate OK"

  step "(j) clang -Wthread-safety -Werror build"
  # The DMC_GUARDED_BY/DMC_REQUIRES annotations (util/thread_annotations.h)
  # only carry analysis weight under Clang; this stage proves every
  # annotated mutex-guarded member is accessed under its lock.
  if command -v clang++ >/dev/null 2>&1; then
    cmake --preset thread-safety >/dev/null
    cmake --build --preset thread-safety -j "${jobs}"
    echo "thread-safety analysis OK"
  else
    echo "clang++ not on PATH; skipping thread-safety analysis"
  fi

  step "(k) clang-tidy concurrency profile"
  # .clang-tidy pins the check list (bugprone/performance/concurrency);
  # run it over the TUs that own locks, atomics, or shared state.
  if command -v clang-tidy >/dev/null 2>&1; then
    clang-tidy -p "${repo_root}/build" --quiet \
      "${repo_root}"/src/core/parallel_dmc.cc \
      "${repo_root}"/src/observe/metrics.cc \
      "${repo_root}"/src/observe/trace.cc \
      "${repo_root}"/src/rules/rule_index.cc \
      "${repo_root}"/src/util/failpoint.cc \
      "${repo_root}"/src/util/logging.cc \
      "${repo_root}"/src/util/atomic_io.cc
    echo "clang-tidy OK"
  else
    echo "clang-tidy not on PATH; skipping clang-tidy stage"
  fi
fi

step "all checks passed"
