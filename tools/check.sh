#!/usr/bin/env bash
# check.sh — one-shot correctness gate. Runs, in order:
#
#   (a) warnings-as-errors build + full ctest        (preset: default)
#   (b) ASan+UBSan build + full ctest                (preset: asan-ubsan)
#   (c) TSan build + parallel/observe/cancellation tests   (preset: tsan)
#   (d) dmc_lint over src/
#   (e) metrics-schema smoke check (dmc_cli --metrics-out)
#
# Exits nonzero on the first failure. Pass --fast to skip the sanitizer
# stages (a + d only), e.g. for a pre-commit hook.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n==== %s ====\n' "$*"; }

step "(a) werror build + ctest"
cmake --preset default >/dev/null
cmake --build --preset default -j "${jobs}"
ctest --preset default -j "${jobs}"

if [[ "${fast}" -eq 0 ]]; then
  step "(b) asan-ubsan build + ctest"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "${jobs}"
  ctest --preset asan-ubsan -j "${jobs}"

  step "(c) tsan build + parallel/observe/cancellation tests"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "${jobs}"
  ctest --test-dir build-tsan -R 'Parallel|ColumnShards|Observe|Cancel' \
    -j "${jobs}" --output-on-failure
fi

step "(d) dmc_lint over src/"
DMC_BUILD_DIR="${repo_root}/build" "${repo_root}/tools/dmc_check.sh"

step "(e) metrics-schema smoke check"
metrics_tmp="$(mktemp -d)"
trap 'rm -rf "${metrics_tmp}"' EXIT
"${repo_root}/build/tools/dmc_cli" mine-imp \
  --input="${repo_root}/tests/testdata/metrics/fixture_matrix.txt" \
  --minconf=0.8 --metrics-out="${metrics_tmp}/metrics.json" >/dev/null
for field in '"schema_version": 1' '"mining"' '"peak_counter_bytes"' \
             '"rules_total"'; do
  grep -qF "${field}" "${metrics_tmp}/metrics.json" || {
    echo "metrics schema smoke check failed: missing ${field}" >&2
    exit 1
  }
done
echo "metrics schema OK"

step "all checks passed"
