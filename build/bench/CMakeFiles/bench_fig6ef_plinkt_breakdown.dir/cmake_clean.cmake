file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6ef_plinkt_breakdown.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig6ef_plinkt_breakdown.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig6ef_plinkt_breakdown.dir/bench_fig6ef_plinkt_breakdown.cc.o"
  "CMakeFiles/bench_fig6ef_plinkt_breakdown.dir/bench_fig6ef_plinkt_breakdown.cc.o.d"
  "bench_fig6ef_plinkt_breakdown"
  "bench_fig6ef_plinkt_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6ef_plinkt_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
