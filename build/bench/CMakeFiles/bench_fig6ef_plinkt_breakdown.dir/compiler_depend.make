# Empty compiler generated dependencies file for bench_fig6ef_plinkt_breakdown.
# This may be replaced when dependencies are built.
