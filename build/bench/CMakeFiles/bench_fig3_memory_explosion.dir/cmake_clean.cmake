file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_memory_explosion.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig3_memory_explosion.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig3_memory_explosion.dir/bench_fig3_memory_explosion.cc.o"
  "CMakeFiles/bench_fig3_memory_explosion.dir/bench_fig3_memory_explosion.cc.o.d"
  "bench_fig3_memory_explosion"
  "bench_fig3_memory_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_memory_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
