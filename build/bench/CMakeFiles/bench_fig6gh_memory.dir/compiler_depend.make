# Empty compiler generated dependencies file for bench_fig6gh_memory.
# This may be replaced when dependencies are built.
