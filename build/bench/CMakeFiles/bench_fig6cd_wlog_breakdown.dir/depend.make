# Empty dependencies file for bench_fig6cd_wlog_breakdown.
# This may be replaced when dependencies are built.
