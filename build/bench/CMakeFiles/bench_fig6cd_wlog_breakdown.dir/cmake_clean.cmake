file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6cd_wlog_breakdown.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig6cd_wlog_breakdown.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig6cd_wlog_breakdown.dir/bench_fig6cd_wlog_breakdown.cc.o"
  "CMakeFiles/bench_fig6cd_wlog_breakdown.dir/bench_fig6cd_wlog_breakdown.cc.o.d"
  "bench_fig6cd_wlog_breakdown"
  "bench_fig6cd_wlog_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6cd_wlog_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
