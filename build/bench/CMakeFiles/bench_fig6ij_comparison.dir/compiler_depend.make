# Empty compiler generated dependencies file for bench_fig6ij_comparison.
# This may be replaced when dependencies are built.
