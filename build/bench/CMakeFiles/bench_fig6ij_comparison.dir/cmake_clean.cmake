file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6ij_comparison.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig6ij_comparison.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig6ij_comparison.dir/bench_fig6ij_comparison.cc.o"
  "CMakeFiles/bench_fig6ij_comparison.dir/bench_fig6ij_comparison.cc.o.d"
  "bench_fig6ij_comparison"
  "bench_fig6ij_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6ij_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
