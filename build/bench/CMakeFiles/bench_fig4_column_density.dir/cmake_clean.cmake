file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_column_density.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig4_column_density.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig4_column_density.dir/bench_fig4_column_density.cc.o"
  "CMakeFiles/bench_fig4_column_density.dir/bench_fig4_column_density.cc.o.d"
  "bench_fig4_column_density"
  "bench_fig4_column_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_column_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
