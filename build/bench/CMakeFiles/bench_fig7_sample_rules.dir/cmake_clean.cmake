file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sample_rules.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig7_sample_rules.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig7_sample_rules.dir/bench_fig7_sample_rules.cc.o"
  "CMakeFiles/bench_fig7_sample_rules.dir/bench_fig7_sample_rules.cc.o.d"
  "bench_fig7_sample_rules"
  "bench_fig7_sample_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sample_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
