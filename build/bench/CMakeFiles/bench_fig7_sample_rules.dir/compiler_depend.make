# Empty compiler generated dependencies file for bench_fig7_sample_rules.
# This may be replaced when dependencies are built.
