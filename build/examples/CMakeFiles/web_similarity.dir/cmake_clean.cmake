file(REMOVE_RECURSE
  "CMakeFiles/web_similarity.dir/web_similarity.cpp.o"
  "CMakeFiles/web_similarity.dir/web_similarity.cpp.o.d"
  "web_similarity"
  "web_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
