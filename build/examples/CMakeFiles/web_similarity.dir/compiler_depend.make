# Empty compiler generated dependencies file for web_similarity.
# This may be replaced when dependencies are built.
