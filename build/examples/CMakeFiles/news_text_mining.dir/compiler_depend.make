# Empty compiler generated dependencies file for news_text_mining.
# This may be replaced when dependencies are built.
