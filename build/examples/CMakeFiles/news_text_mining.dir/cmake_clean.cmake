file(REMOVE_RECURSE
  "CMakeFiles/news_text_mining.dir/news_text_mining.cpp.o"
  "CMakeFiles/news_text_mining.dir/news_text_mining.cpp.o.d"
  "news_text_mining"
  "news_text_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_text_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
