# Empty compiler generated dependencies file for access_log_analysis.
# This may be replaced when dependencies are built.
