file(REMOVE_RECURSE
  "CMakeFiles/access_log_analysis.dir/access_log_analysis.cpp.o"
  "CMakeFiles/access_log_analysis.dir/access_log_analysis.cpp.o.d"
  "access_log_analysis"
  "access_log_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
