file(REMOVE_RECURSE
  "CMakeFiles/dictionary_synonyms.dir/dictionary_synonyms.cpp.o"
  "CMakeFiles/dictionary_synonyms.dir/dictionary_synonyms.cpp.o.d"
  "dictionary_synonyms"
  "dictionary_synonyms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_synonyms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
