# Empty compiler generated dependencies file for dictionary_synonyms.
# This may be replaced when dependencies are built.
