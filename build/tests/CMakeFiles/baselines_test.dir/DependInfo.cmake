
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apriori_test.cc" "tests/CMakeFiles/baselines_test.dir/apriori_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/apriori_test.cc.o.d"
  "/root/repo/tests/bruteforce_test.cc" "tests/CMakeFiles/baselines_test.dir/bruteforce_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/bruteforce_test.cc.o.d"
  "/root/repo/tests/dhp_test.cc" "tests/CMakeFiles/baselines_test.dir/dhp_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/dhp_test.cc.o.d"
  "/root/repo/tests/kmin_test.cc" "tests/CMakeFiles/baselines_test.dir/kmin_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/kmin_test.cc.o.d"
  "/root/repo/tests/lsh_test.cc" "tests/CMakeFiles/baselines_test.dir/lsh_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/lsh_test.cc.o.d"
  "/root/repo/tests/minhash_test.cc" "tests/CMakeFiles/baselines_test.dir/minhash_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/minhash_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/dmc_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dmc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/dmc_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/dmc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
