file(REMOVE_RECURSE
  "CMakeFiles/baselines_test.dir/apriori_test.cc.o"
  "CMakeFiles/baselines_test.dir/apriori_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/bruteforce_test.cc.o"
  "CMakeFiles/baselines_test.dir/bruteforce_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/dhp_test.cc.o"
  "CMakeFiles/baselines_test.dir/dhp_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/kmin_test.cc.o"
  "CMakeFiles/baselines_test.dir/kmin_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/lsh_test.cc.o"
  "CMakeFiles/baselines_test.dir/lsh_test.cc.o.d"
  "CMakeFiles/baselines_test.dir/minhash_test.cc.o"
  "CMakeFiles/baselines_test.dir/minhash_test.cc.o.d"
  "baselines_test"
  "baselines_test.pdb"
  "baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
