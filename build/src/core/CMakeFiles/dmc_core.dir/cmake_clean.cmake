file(REMOVE_RECURSE
  "CMakeFiles/dmc_core.dir/dmc_base.cc.o"
  "CMakeFiles/dmc_core.dir/dmc_base.cc.o.d"
  "CMakeFiles/dmc_core.dir/dmc_imp.cc.o"
  "CMakeFiles/dmc_core.dir/dmc_imp.cc.o.d"
  "CMakeFiles/dmc_core.dir/dmc_sim.cc.o"
  "CMakeFiles/dmc_core.dir/dmc_sim.cc.o.d"
  "CMakeFiles/dmc_core.dir/dmc_sim_pass.cc.o"
  "CMakeFiles/dmc_core.dir/dmc_sim_pass.cc.o.d"
  "CMakeFiles/dmc_core.dir/external_miner.cc.o"
  "CMakeFiles/dmc_core.dir/external_miner.cc.o.d"
  "CMakeFiles/dmc_core.dir/parallel_dmc.cc.o"
  "CMakeFiles/dmc_core.dir/parallel_dmc.cc.o.d"
  "CMakeFiles/dmc_core.dir/streaming_imp.cc.o"
  "CMakeFiles/dmc_core.dir/streaming_imp.cc.o.d"
  "CMakeFiles/dmc_core.dir/streaming_sim.cc.o"
  "CMakeFiles/dmc_core.dir/streaming_sim.cc.o.d"
  "libdmc_core.a"
  "libdmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
