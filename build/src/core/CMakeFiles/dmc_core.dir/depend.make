# Empty dependencies file for dmc_core.
# This may be replaced when dependencies are built.
