
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dmc_base.cc" "src/core/CMakeFiles/dmc_core.dir/dmc_base.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/dmc_base.cc.o.d"
  "/root/repo/src/core/dmc_imp.cc" "src/core/CMakeFiles/dmc_core.dir/dmc_imp.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/dmc_imp.cc.o.d"
  "/root/repo/src/core/dmc_sim.cc" "src/core/CMakeFiles/dmc_core.dir/dmc_sim.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/dmc_sim.cc.o.d"
  "/root/repo/src/core/dmc_sim_pass.cc" "src/core/CMakeFiles/dmc_core.dir/dmc_sim_pass.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/dmc_sim_pass.cc.o.d"
  "/root/repo/src/core/external_miner.cc" "src/core/CMakeFiles/dmc_core.dir/external_miner.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/external_miner.cc.o.d"
  "/root/repo/src/core/parallel_dmc.cc" "src/core/CMakeFiles/dmc_core.dir/parallel_dmc.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/parallel_dmc.cc.o.d"
  "/root/repo/src/core/streaming_imp.cc" "src/core/CMakeFiles/dmc_core.dir/streaming_imp.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/streaming_imp.cc.o.d"
  "/root/repo/src/core/streaming_sim.cc" "src/core/CMakeFiles/dmc_core.dir/streaming_sim.cc.o" "gcc" "src/core/CMakeFiles/dmc_core.dir/streaming_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/dmc_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/dmc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
