file(REMOVE_RECURSE
  "libdmc_core.a"
)
