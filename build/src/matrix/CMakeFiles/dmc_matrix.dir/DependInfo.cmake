
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/binary_matrix.cc" "src/matrix/CMakeFiles/dmc_matrix.dir/binary_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/dmc_matrix.dir/binary_matrix.cc.o.d"
  "/root/repo/src/matrix/column_stats.cc" "src/matrix/CMakeFiles/dmc_matrix.dir/column_stats.cc.o" "gcc" "src/matrix/CMakeFiles/dmc_matrix.dir/column_stats.cc.o.d"
  "/root/repo/src/matrix/matrix_io.cc" "src/matrix/CMakeFiles/dmc_matrix.dir/matrix_io.cc.o" "gcc" "src/matrix/CMakeFiles/dmc_matrix.dir/matrix_io.cc.o.d"
  "/root/repo/src/matrix/row_order.cc" "src/matrix/CMakeFiles/dmc_matrix.dir/row_order.cc.o" "gcc" "src/matrix/CMakeFiles/dmc_matrix.dir/row_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
