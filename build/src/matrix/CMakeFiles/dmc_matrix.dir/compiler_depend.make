# Empty compiler generated dependencies file for dmc_matrix.
# This may be replaced when dependencies are built.
