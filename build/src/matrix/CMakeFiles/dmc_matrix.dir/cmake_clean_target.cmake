file(REMOVE_RECURSE
  "libdmc_matrix.a"
)
