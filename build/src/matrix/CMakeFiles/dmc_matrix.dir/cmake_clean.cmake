file(REMOVE_RECURSE
  "CMakeFiles/dmc_matrix.dir/binary_matrix.cc.o"
  "CMakeFiles/dmc_matrix.dir/binary_matrix.cc.o.d"
  "CMakeFiles/dmc_matrix.dir/column_stats.cc.o"
  "CMakeFiles/dmc_matrix.dir/column_stats.cc.o.d"
  "CMakeFiles/dmc_matrix.dir/matrix_io.cc.o"
  "CMakeFiles/dmc_matrix.dir/matrix_io.cc.o.d"
  "CMakeFiles/dmc_matrix.dir/row_order.cc.o"
  "CMakeFiles/dmc_matrix.dir/row_order.cc.o.d"
  "libdmc_matrix.a"
  "libdmc_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
