file(REMOVE_RECURSE
  "CMakeFiles/dmc_util.dir/bitvector.cc.o"
  "CMakeFiles/dmc_util.dir/bitvector.cc.o.d"
  "CMakeFiles/dmc_util.dir/logging.cc.o"
  "CMakeFiles/dmc_util.dir/logging.cc.o.d"
  "CMakeFiles/dmc_util.dir/memory_tracker.cc.o"
  "CMakeFiles/dmc_util.dir/memory_tracker.cc.o.d"
  "CMakeFiles/dmc_util.dir/random.cc.o"
  "CMakeFiles/dmc_util.dir/random.cc.o.d"
  "CMakeFiles/dmc_util.dir/status.cc.o"
  "CMakeFiles/dmc_util.dir/status.cc.o.d"
  "CMakeFiles/dmc_util.dir/zipf.cc.o"
  "CMakeFiles/dmc_util.dir/zipf.cc.o.d"
  "libdmc_util.a"
  "libdmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
