# Empty compiler generated dependencies file for dmc_util.
# This may be replaced when dependencies are built.
