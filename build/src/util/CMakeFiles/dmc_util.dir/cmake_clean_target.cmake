file(REMOVE_RECURSE
  "libdmc_util.a"
)
