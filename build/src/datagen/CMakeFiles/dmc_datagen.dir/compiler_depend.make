# Empty compiler generated dependencies file for dmc_datagen.
# This may be replaced when dependencies are built.
