
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dictionary_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/dictionary_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/dictionary_gen.cc.o.d"
  "/root/repo/src/datagen/linkgraph_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/linkgraph_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/linkgraph_gen.cc.o.d"
  "/root/repo/src/datagen/news_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/news_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/news_gen.cc.o.d"
  "/root/repo/src/datagen/planted_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/planted_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/planted_gen.cc.o.d"
  "/root/repo/src/datagen/quest_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/quest_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/quest_gen.cc.o.d"
  "/root/repo/src/datagen/weblog_gen.cc" "src/datagen/CMakeFiles/dmc_datagen.dir/weblog_gen.cc.o" "gcc" "src/datagen/CMakeFiles/dmc_datagen.dir/weblog_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/dmc_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/dmc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
