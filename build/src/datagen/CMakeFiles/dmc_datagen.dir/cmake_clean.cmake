file(REMOVE_RECURSE
  "CMakeFiles/dmc_datagen.dir/dictionary_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/dictionary_gen.cc.o.d"
  "CMakeFiles/dmc_datagen.dir/linkgraph_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/linkgraph_gen.cc.o.d"
  "CMakeFiles/dmc_datagen.dir/news_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/news_gen.cc.o.d"
  "CMakeFiles/dmc_datagen.dir/planted_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/planted_gen.cc.o.d"
  "CMakeFiles/dmc_datagen.dir/quest_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/quest_gen.cc.o.d"
  "CMakeFiles/dmc_datagen.dir/weblog_gen.cc.o"
  "CMakeFiles/dmc_datagen.dir/weblog_gen.cc.o.d"
  "libdmc_datagen.a"
  "libdmc_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
