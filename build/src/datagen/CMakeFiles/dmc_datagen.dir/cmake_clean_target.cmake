file(REMOVE_RECURSE
  "libdmc_datagen.a"
)
