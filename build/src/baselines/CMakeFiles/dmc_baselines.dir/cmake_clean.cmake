file(REMOVE_RECURSE
  "CMakeFiles/dmc_baselines.dir/apriori.cc.o"
  "CMakeFiles/dmc_baselines.dir/apriori.cc.o.d"
  "CMakeFiles/dmc_baselines.dir/bruteforce.cc.o"
  "CMakeFiles/dmc_baselines.dir/bruteforce.cc.o.d"
  "CMakeFiles/dmc_baselines.dir/dhp.cc.o"
  "CMakeFiles/dmc_baselines.dir/dhp.cc.o.d"
  "CMakeFiles/dmc_baselines.dir/kmin.cc.o"
  "CMakeFiles/dmc_baselines.dir/kmin.cc.o.d"
  "CMakeFiles/dmc_baselines.dir/lsh.cc.o"
  "CMakeFiles/dmc_baselines.dir/lsh.cc.o.d"
  "CMakeFiles/dmc_baselines.dir/minhash.cc.o"
  "CMakeFiles/dmc_baselines.dir/minhash.cc.o.d"
  "libdmc_baselines.a"
  "libdmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
