file(REMOVE_RECURSE
  "libdmc_baselines.a"
)
