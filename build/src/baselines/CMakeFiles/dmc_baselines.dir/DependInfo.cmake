
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/apriori.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/apriori.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/apriori.cc.o.d"
  "/root/repo/src/baselines/bruteforce.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/bruteforce.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/bruteforce.cc.o.d"
  "/root/repo/src/baselines/dhp.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/dhp.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/dhp.cc.o.d"
  "/root/repo/src/baselines/kmin.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/kmin.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/kmin.cc.o.d"
  "/root/repo/src/baselines/lsh.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/lsh.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/lsh.cc.o.d"
  "/root/repo/src/baselines/minhash.cc" "src/baselines/CMakeFiles/dmc_baselines.dir/minhash.cc.o" "gcc" "src/baselines/CMakeFiles/dmc_baselines.dir/minhash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/dmc_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/dmc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
