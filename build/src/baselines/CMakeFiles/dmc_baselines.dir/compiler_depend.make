# Empty compiler generated dependencies file for dmc_baselines.
# This may be replaced when dependencies are built.
