file(REMOVE_RECURSE
  "CMakeFiles/dmc_rules.dir/grouping.cc.o"
  "CMakeFiles/dmc_rules.dir/grouping.cc.o.d"
  "CMakeFiles/dmc_rules.dir/multiattr.cc.o"
  "CMakeFiles/dmc_rules.dir/multiattr.cc.o.d"
  "CMakeFiles/dmc_rules.dir/rule.cc.o"
  "CMakeFiles/dmc_rules.dir/rule.cc.o.d"
  "CMakeFiles/dmc_rules.dir/rule_set.cc.o"
  "CMakeFiles/dmc_rules.dir/rule_set.cc.o.d"
  "CMakeFiles/dmc_rules.dir/verifier.cc.o"
  "CMakeFiles/dmc_rules.dir/verifier.cc.o.d"
  "libdmc_rules.a"
  "libdmc_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
