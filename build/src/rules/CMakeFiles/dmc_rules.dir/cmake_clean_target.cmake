file(REMOVE_RECURSE
  "libdmc_rules.a"
)
