# Empty compiler generated dependencies file for dmc_rules.
# This may be replaced when dependencies are built.
