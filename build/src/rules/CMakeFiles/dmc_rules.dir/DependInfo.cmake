
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/grouping.cc" "src/rules/CMakeFiles/dmc_rules.dir/grouping.cc.o" "gcc" "src/rules/CMakeFiles/dmc_rules.dir/grouping.cc.o.d"
  "/root/repo/src/rules/multiattr.cc" "src/rules/CMakeFiles/dmc_rules.dir/multiattr.cc.o" "gcc" "src/rules/CMakeFiles/dmc_rules.dir/multiattr.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/rules/CMakeFiles/dmc_rules.dir/rule.cc.o" "gcc" "src/rules/CMakeFiles/dmc_rules.dir/rule.cc.o.d"
  "/root/repo/src/rules/rule_set.cc" "src/rules/CMakeFiles/dmc_rules.dir/rule_set.cc.o" "gcc" "src/rules/CMakeFiles/dmc_rules.dir/rule_set.cc.o.d"
  "/root/repo/src/rules/verifier.cc" "src/rules/CMakeFiles/dmc_rules.dir/verifier.cc.o" "gcc" "src/rules/CMakeFiles/dmc_rules.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/dmc_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
