# Empty dependencies file for dmc_cli.
# This may be replaced when dependencies are built.
