file(REMOVE_RECURSE
  "CMakeFiles/dmc_cli.dir/dmc_cli.cc.o"
  "CMakeFiles/dmc_cli.dir/dmc_cli.cc.o.d"
  "dmc_cli"
  "dmc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
